"""Engine fork/restore and pending() bookkeeping tests.

Covers the satellite regressions that ride with the snapshot work:

* ``EventHandle.cancel()`` racing a generator-bodied ``every()`` -- the
  series must stop even when the cancel lands while the body process is
  mid-flight, and ``pending()`` must stay exact throughout.
* The ``_pending_live`` / ``_note_cancelled`` audit across bucket
  compaction and :meth:`Simulator.fork` / :meth:`Simulator.restore`,
  including a hypothesis property test interleaving
  schedule/cancel/fork/restore against a shadow model.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.sim.engine import (
    _COMPACT_MIN,
    WHEEL_SLOT_NS,
    WHEEL_SPAN_NS,
    SimulationError,
    Simulator,
    Timeout,
)

SETTINGS = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestCancelVsEvery:
    """Satellite: EventHandle.cancel() vs generator-bodied every()."""

    @pytest.mark.parametrize("wheel", [True, False])
    def test_cancel_from_inside_plain_callback(self, wheel):
        sim = Simulator(use_timer_wheel=wheel)
        fired = []

        def tick():
            fired.append(sim.now)
            if len(fired) == 3:
                handle.cancel()

        handle = sim.every(100, tick)
        assert sim.pending() == 1
        sim.run(until=10_000)
        assert fired == [100, 200, 300]
        assert sim.pending() == 0

    @pytest.mark.parametrize("wheel", [True, False])
    def test_cancel_from_inside_generator_body(self, wheel):
        # The body runs as a Process at each firing; a cancel issued from
        # *inside* the body must suppress the re-arm that happens when the
        # body completes, with no further firings afterwards.
        sim = Simulator(use_timer_wheel=wheel)
        fired = []

        def body():
            fired.append(sim.now)
            yield Timeout(10)
            if len(fired) == 2:
                handle.cancel()
            yield Timeout(10)

        handle = sim.every(100, body)
        sim.run(until=10_000)
        # Firing 1 at t=100, body completes at 120, re-arm for 220.
        # Firing 2 at t=220, cancel lands at 230, body completes at 240,
        # the done-callback re-arm sees the cancel and stands down.
        assert fired == [100, 220]
        assert sim.pending() == 0

    def test_cancel_during_body_keeps_pending_exact(self):
        # While the body runs, the series handle is not resident in any
        # queue; cancel() must not double-decrement the live count (the
        # handle's own pending slot was already consumed by the firing).
        sim = Simulator()
        observed = []

        def body():
            yield Timeout(5)
            handle.cancel()
            handle.cancel()  # idempotent: second cancel is a no-op
            observed.append(sim.pending())

        handle = sim.every(50, body)
        assert sim.pending() == 1
        sim.run(until=400)
        assert observed == [0]
        assert sim.pending() == 0

    def test_cancel_between_firings_stops_series(self):
        sim = Simulator()
        fired = []
        handle = sim.every(100, lambda: fired.append(sim.now))
        sim.run(until=250)
        assert fired == [100, 200]
        assert sim.pending() == 1  # re-armed for t=300
        handle.cancel()
        assert sim.pending() == 0
        sim.run(until=1_000)
        assert fired == [100, 200]


class TestPendingBookkeepingAudit:
    """Satellite: _pending_live / _note_cancelled across compaction and
    fork/restore."""

    def test_bucket_compaction_keeps_pending_exact(self):
        sim = Simulator(use_timer_wheel=True)
        t = 5 * WHEEL_SLOT_NS + 7  # all land in the same far bucket
        handles = [sim.at(t, (lambda: None)) for _ in range(12)]
        assert len(handles) >= _COMPACT_MIN
        assert sim.pending() == 12
        for h in handles[:7]:  # 7*2 > 12 triggers compaction
            h.cancel()
        assert sim.pending() == 5
        assert sim._wheel_count == 5
        handles[0].cancel()  # compacted-away handle: cancel is a no-op
        assert sim.pending() == 5
        assert sim.run() == 5
        assert sim.pending() == 0

    def test_restore_heals_bucket_compaction(self):
        # Fork *before* the compaction, cancel past the threshold (which
        # compacts the bucket and orphans the dead handles), then restore:
        # every handle must be live again and fire exactly once.
        sim = Simulator(use_timer_wheel=True)
        fired = []
        t = 5 * WHEEL_SLOT_NS + 7
        handles = [sim.at(t, fired.append, i) for i in range(12)]
        snap = sim.fork()
        for h in handles[:7]:
            h.cancel()
        assert sim.pending() == 5
        sim.restore(snap)
        assert sim.pending() == 12
        assert sim.run() == 12
        assert sorted(fired) == list(range(12))

    @pytest.mark.parametrize("wheel", [True, False])
    def test_fork_restore_roundtrip_counts(self, wheel):
        sim = Simulator(use_timer_wheel=wheel)
        log = []
        handles = [sim.after(10 * (i + 1), log.append, i) for i in range(6)]
        sim.run(until=25)
        assert log == [0, 1]
        snap = sim.fork()
        base = sim.pending()
        assert base == 4
        handles[2].cancel()
        for i in range(5):
            sim.after(1_000 + i, log.append, 100 + i)
        assert sim.pending() == base - 1 + 5
        sim.restore(snap)
        assert sim.pending() == base
        assert sim.now == 25
        sim.run()
        assert log == [0, 1, 2, 3, 4, 5]

    def test_snapshot_restorable_more_than_once(self):
        sim = Simulator()
        fired = []
        sim.after(10, fired.append, "a")
        snap = sim.fork()
        for _ in range(3):
            sim.run()
            assert sim.pending() == 0
            sim.restore(snap)
            assert sim.pending() == 1
        assert fired == ["a", "a", "a"]

    def test_fork_refuses_mid_run(self):
        sim = Simulator()
        failures = []

        def try_fork():
            try:
                sim.fork()
            except SimulationError:
                failures.append("refused")

        sim.after(5, try_fork)
        sim.run()
        assert failures == ["refused"]

    def test_fork_refuses_live_process_continuation(self):
        sim = Simulator()

        def proc():
            yield Timeout(100)

        sim.spawn(proc())
        sim.run(until=10)  # process now parked on the Timeout
        with pytest.raises(SimulationError, match="generator continuation"):
            sim.fork()


class TestScheduleCancelForkRestoreProperty:
    """Hypothesis audit: pending() must track a shadow model under any
    interleaving of schedule, cancel, run, fork and restore."""

    @SETTINGS
    @given(
        wheel=st.booleans(),
        ops=st.lists(
            st.one_of(
                st.tuples(
                    st.just("sched"),
                    st.one_of(
                        st.integers(0, 3 * WHEEL_SLOT_NS),
                        st.integers(0, 2 * WHEEL_SPAN_NS),
                    ),
                ),
                st.tuples(st.just("cancel"), st.integers(0, 1_000)),
                st.tuples(st.just("run"), st.integers(0, 2 * WHEEL_SLOT_NS)),
                st.tuples(st.just("fork"), st.just(0)),
                st.tuples(st.just("restore"), st.just(0)),
            ),
            max_size=40,
        ),
    )
    def test_pending_matches_shadow_model(self, wheel, ops):
        sim = Simulator(use_timer_wheel=wheel)
        fired = []
        live = {}  # handle -> None: the shadow model of live one-shots
        snap = None  # (engine snapshot, shadow copy)
        for op, arg in ops:
            if op == "sched":
                live[sim.after(arg, fired.append, None)] = None
            elif op == "cancel" and live:
                ordered = sorted(live, key=lambda h: (h.time, h.seq))
                victim = ordered[arg % len(ordered)]
                victim.cancel()
                del live[victim]
            elif op == "run":
                sim.run(until=sim.now + arg)
                for h in [h for h in live if h.time <= sim.now]:
                    del live[h]
            elif op == "fork":
                snap = (sim.fork(), dict(live))
            elif op == "restore" and snap is not None:
                sim.restore(snap[0])
                live = dict(snap[1])
            assert sim.pending() == len(live)
        # Drain: every live handle fires exactly once, nothing else does.
        assert sim.run() == len(live)
        assert sim.pending() == 0
