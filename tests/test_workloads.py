"""Workload-level behaviour: the figure-shaped claims at reduced scale."""

import pytest

from repro.workloads.apache import APACHE_CACHE_PROFILES, ApacheConfig, ApacheWorkload
from repro.workloads.microbench import MicrobenchConfig, MunmapMicrobench
from repro.workloads.numa_apps import NUMA_PROFILES, NumaConfig, NumaWorkload
from repro.workloads.parsec import PARSEC_PROFILES, ParsecConfig, ParsecWorkload


def apache(mech, cores, **kw):
    cfg = ApacheConfig(cores=cores, duration_ms=40, warmup_ms=10, **kw)
    return ApacheWorkload(cfg).run(mech)


class TestApacheWorkload:
    def test_throughput_positive_and_scales_at_low_cores(self):
        two = apache("latr", 2)
        six = apache("latr", 6)
        assert six.metric("requests_per_sec") > 1.5 * two.metric("requests_per_sec")

    def test_latr_beats_linux_at_high_cores(self):
        linux = apache("linux", 12)
        latr = apache("latr", 12)
        assert latr.metric("requests_per_sec") > 1.3 * linux.metric("requests_per_sec")

    def test_linux_saturates(self):
        """Figure 1's flatline: Linux gains little (or loses) past ~8 cores."""
        eight = apache("linux", 8)
        twelve = apache("linux", 12)
        assert twelve.metric("requests_per_sec") < 1.15 * eight.metric("requests_per_sec")

    def test_latr_and_linux_equal_at_two_cores(self):
        linux = apache("linux", 2)
        latr = apache("latr", 2)
        ratio = latr.metric("requests_per_sec") / linux.metric("requests_per_sec")
        assert 0.9 < ratio < 1.15

    def test_abis_below_linux_at_low_cores(self):
        linux = apache("linux", 2)
        abis = apache("abis", 2)
        assert abis.metric("requests_per_sec") < linux.metric("requests_per_sec")

    def test_abis_between_linux_and_latr_at_high_cores(self):
        linux = apache("linux", 12)
        abis = apache("abis", 12)
        latr = apache("latr", 12)
        assert (
            linux.metric("requests_per_sec")
            < abis.metric("requests_per_sec")
            < latr.metric("requests_per_sec")
        )

    def test_shootdown_rate_tracks_requests(self):
        result = apache("latr", 6)
        assert result.metric("shootdowns_per_sec") == pytest.approx(
            result.metric("requests_per_sec"), rel=0.05
        )

    def test_no_mmap_mode_has_no_shootdowns(self):
        result = apache("linux", 4, use_mmap=False)
        assert result.metric("shootdowns_per_sec") == 0
        assert result.metric("requests_per_sec") > 0

    def test_single_core_parity(self):
        """Figure 12: no remote cores -> LATR adds (almost) nothing."""
        linux = apache("linux", 1)
        latr = apache("latr", 1)
        ratio = latr.metric("requests_per_sec") / linux.metric("requests_per_sec")
        assert 0.97 < ratio < 1.03

    def test_table5_metrics_present(self):
        linux = apache("linux", 12)
        latr = apache("latr", 12)
        assert linux.metrics["sync_shootdown_ns"] > 1000
        assert latr.metrics["state_write_ns"] == pytest.approx(132, abs=1)
        assert latr.metrics["sweep_ns"] >= 158

    def test_cache_profiles_cover_paper_rows(self):
        assert set(APACHE_CACHE_PROFILES) == {1, 6, 12}


class TestMicrobenchWorkload:
    def test_result_metrics_complete(self):
        result = MunmapMicrobench(MicrobenchConfig(cores=4, reps=10)).run("latr")
        for key in ("munmap_us", "munmap_p99_us", "shootdown_us", "shootdown_fraction"):
            assert key in result.metrics

    def test_deterministic_across_runs(self):
        cfg = MicrobenchConfig(cores=4, reps=10)
        a = MunmapMicrobench(cfg).run("latr")
        b = MunmapMicrobench(cfg).run("latr")
        assert a.metrics == b.metrics

    def test_lazy_overhead_zero_for_linux(self):
        result = MunmapMicrobench(MicrobenchConfig(cores=4, reps=10)).lazy_memory_overhead(
            "linux"
        )
        assert result.metric("peak_lazy_mb") == 0.0

    def test_lazy_overhead_positive_and_bounded_for_latr(self):
        result = MunmapMicrobench(
            MicrobenchConfig(cores=8, pages=16, reps=60)
        ).lazy_memory_overhead("latr")
        assert 0.0 < result.metric("peak_lazy_mb") < 25.0  # paper bound ~21 MB


class TestParsecWorkload:
    def test_dedup_improves_under_latr(self):
        cfg = ParsecConfig(work_per_core_ms=50)
        linux = ParsecWorkload(PARSEC_PROFILES["dedup"], cfg).run("linux")
        latr = ParsecWorkload(PARSEC_PROFILES["dedup"], cfg).run("latr")
        ratio = latr.metric("runtime_ms") / linux.metric("runtime_ms")
        assert ratio < 0.97  # paper: 0.904

    def test_canneal_small_overhead(self):
        cfg = ParsecConfig(work_per_core_ms=50)
        linux = ParsecWorkload(PARSEC_PROFILES["canneal"], cfg).run("linux")
        latr = ParsecWorkload(PARSEC_PROFILES["canneal"], cfg).run("latr")
        ratio = latr.metric("runtime_ms") / linux.metric("runtime_ms")
        assert 1.0 < ratio < 1.05  # paper: +1.7%

    def test_quiet_profile_is_neutral(self):
        cfg = ParsecConfig(work_per_core_ms=50)
        linux = ParsecWorkload(PARSEC_PROFILES["blackscholes"], cfg).run("linux")
        latr = ParsecWorkload(PARSEC_PROFILES["blackscholes"], cfg).run("latr")
        ratio = latr.metric("runtime_ms") / linux.metric("runtime_ms")
        assert 0.99 < ratio < 1.01

    def test_all_profiles_run(self):
        cfg = ParsecConfig(work_per_core_ms=10)
        for name, profile in PARSEC_PROFILES.items():
            result = ParsecWorkload(profile, cfg).run("latr")
            assert result.metric("runtime_ms") >= 10

    def test_shootdown_rates_ordered_by_profile(self):
        cfg = ParsecConfig(work_per_core_ms=50)
        dedup = ParsecWorkload(PARSEC_PROFILES["dedup"], cfg).run("linux")
        swaptions = ParsecWorkload(PARSEC_PROFILES["swaptions"], cfg).run("linux")
        assert dedup.metric("shootdowns_per_sec") > 10 * swaptions.metric(
            "shootdowns_per_sec"
        )


class TestNumaWorkload:
    def test_migrations_happen(self):
        # The refresh->sample->two-faults->migrate pipeline needs ~40 ms to
        # produce its first migrations; 80 ms gives a steady stream.
        cfg = NumaConfig(work_per_core_ms=80)
        result = NumaWorkload(NUMA_PROFILES["graph500"], cfg).run("linux")
        assert result.metric("migrations") > 50

    def test_latr_sends_no_sampling_ipis(self):
        cfg = NumaConfig(work_per_core_ms=60)
        linux = NumaWorkload(NUMA_PROFILES["graph500"], cfg).run("linux")
        latr = NumaWorkload(NUMA_PROFILES["graph500"], cfg).run("latr")
        assert linux.metric("ipis_per_sec") > 1000
        assert latr.metric("ipis_per_sec") == 0

    def test_graph500_latr_faster_on_average(self):
        # The migration dynamics are chaotic at short horizons; average two
        # seeds the way the fig11 experiment does.
        ratios = []
        for seed in (1, 2):
            cfg = NumaConfig(work_per_core_ms=80, seed=seed)
            linux = NumaWorkload(NUMA_PROFILES["graph500"], cfg).run("linux")
            latr = NumaWorkload(NUMA_PROFILES["graph500"], cfg).run("latr")
            ratios.append(latr.metric("runtime_ms") / linux.metric("runtime_ms"))
        assert sum(ratios) / len(ratios) < 1.0

    def test_pbzip2_neutral(self):
        cfg = NumaConfig(work_per_core_ms=60)
        linux = NumaWorkload(NUMA_PROFILES["pbzip2"], cfg).run("linux")
        latr = NumaWorkload(NUMA_PROFILES["pbzip2"], cfg).run("latr")
        ratio = latr.metric("runtime_ms") / linux.metric("runtime_ms")
        assert 0.97 < ratio < 1.03
