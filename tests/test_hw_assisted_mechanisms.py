"""DiDi and UNITD hardware-comparator mechanisms."""

import pytest

from repro import build_system
from repro.coherence import MECHANISMS
from repro.kernel.invariants import check_all, check_no_stale_entries_for
from repro.mm.addr import PAGE_SIZE

from helpers import make_proc, run_to_completion, drain


def share_unmap(system, n_pages=2):
    kernel = system.kernel
    proc, tasks = make_proc(system)
    box = {}

    def body():
        t0, c0 = tasks[0], kernel.machine.core(0)
        vrange = yield from kernel.syscalls.mmap(t0, c0, n_pages * PAGE_SIZE)
        for t in tasks:
            core = kernel.machine.core(t.home_core_id)
            yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
        yield from kernel.syscalls.munmap(t0, c0, vrange)
        box["vrange"] = vrange

    run_to_completion(system, body())
    return proc, tasks, box["vrange"]


@pytest.mark.parametrize("mech", ["didi", "unitd"])
class TestHardwareMechanisms:
    def test_no_ipis_no_interrupts(self, mech):
        system = build_system(mech, cores=4)
        share_unmap(system)
        assert system.stats.counter("ipi.sent").value == 0
        assert all(c.interrupts_received == 0 for c in system.kernel.machine.cores)

    def test_synchronous_completion(self, mech):
        """Remote TLBs are clean at munmap return (not asynchronous)."""
        system = build_system(mech, cores=4)
        proc, tasks, vrange = share_unmap(system)
        assert check_no_stale_entries_for(system.kernel, proc.mm, vrange) == []

    def test_frames_reusable_immediately(self, mech):
        system = build_system(mech, cores=4)
        proc, tasks, vrange = share_unmap(system)
        assert proc.mm.lazy_frames == []
        assert check_all(system.kernel) == []

    def test_table2_row(self, mech):
        props = MECHANISMS[mech].properties
        assert props.non_ipi
        assert props.no_remote_core_involvement
        assert not props.no_hardware_changes  # that's the point
        assert not props.asynchronous

    def test_sync_classes_work(self, mech):
        system = build_system(mech, cores=2)
        kernel = system.kernel
        proc, tasks = make_proc(system)
        from repro.mm.vma import Prot

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE, populate=True)
            yield from kernel.syscalls.mprotect(t0, c0, vrange, Prot.ro())
            yield from kernel.syscalls.munmap(t0, c0, vrange)

        run_to_completion(system, body())
        drain(system, ms=3)
        assert check_all(kernel) == []


class TestDidiDirectory:
    def test_directory_tracks_and_clears(self):
        system = build_system("didi", cores=4)
        kernel = system.kernel
        coherence = kernel.coherence
        proc, tasks, vrange = share_unmap(system, n_pages=1)
        # After the shootdown the directory entry is consumed.
        assert (proc.mm.mm_id, vrange.vpn_start) not in coherence._directory

    def test_only_sharers_invalidate(self):
        system = build_system("didi", cores=4)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
            t1, c1 = tasks[1], kernel.machine.core(1)
            yield from kernel.syscalls.touch_pages(t1, c1, vrange)
            yield from kernel.syscalls.munmap(t0, c0, vrange)

        run_to_completion(system, body())
        assert system.stats.counter("didi.remote_invalidations").value == 1


class TestUnitdBroadcasts:
    def test_broadcast_counted_per_page(self):
        system = build_system("unitd", cores=4)
        share_unmap(system, n_pages=3)
        assert system.stats.counter("unitd.broadcasts").value == 3

    def test_fill_tax_charged(self):
        fast = build_system("linux", cores=1)
        taxed = build_system("unitd", cores=1)
        times = {}
        for name, system in (("linux", fast), ("unitd", taxed)):
            proc, tasks = make_proc(system, n_threads=1)

            def body(system=system, tasks=tasks):
                t0, c0 = tasks[0], system.kernel.machine.core(0)
                vrange = yield from system.kernel.syscalls.mmap(t0, c0, 32 * PAGE_SIZE)
                start = system.sim.now
                yield from system.kernel.syscalls.touch_pages(t0, c0, vrange)
                times[name] = system.sim.now - start

            run_to_completion(system, body())
        assert times["unitd"] > times["linux"]


class TestLatrMatchesHardware:
    def test_free_latency_parity(self):
        """The paper's thesis, executable: software LATR is within ~20% of
        the hardware designs on the free path."""
        from repro.workloads.microbench import MicrobenchConfig, MunmapMicrobench

        results = {}
        for mech in ("latr", "didi", "unitd"):
            results[mech] = MunmapMicrobench(
                MicrobenchConfig(cores=16, reps=15)
            ).run(mech).metric("munmap_us")
        assert results["latr"] < 1.2 * results["didi"]
        assert results["latr"] < 1.2 * results["unitd"]
