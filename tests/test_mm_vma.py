"""Unit tests for VMAs and the VMA set."""

import pytest

from repro.mm.addr import PAGE_SIZE, VirtRange
from repro.mm.vma import Prot, Vma, VmaKind, VmaSet, VmaSetError


def vr(start_page, n_pages):
    return VirtRange.from_pages(start_page, n_pages)


def vma(start_page, n_pages, **kw):
    return Vma(range=vr(start_page, n_pages), prot=Prot.rw(), **kw)


class TestVma:
    def test_split(self):
        v = vma(10, 10)
        tail = v.split_at(15 * PAGE_SIZE)
        assert v.range == vr(10, 5)
        assert tail.range == vr(15, 5)
        assert tail.vma_id != v.vma_id

    def test_split_file_offset(self):
        v = Vma(range=vr(0, 4), prot=Prot.ro(), kind=VmaKind.FILE, file_key="f", file_offset=0)
        tail = v.split_at(2 * PAGE_SIZE)
        assert tail.file_offset == 2 * PAGE_SIZE

    def test_bad_split_points(self):
        v = vma(10, 2)
        with pytest.raises(ValueError):
            v.split_at(10 * PAGE_SIZE)  # at start
        with pytest.raises(ValueError):
            v.split_at(12 * PAGE_SIZE)  # at end
        with pytest.raises(ValueError):
            v.split_at(11 * PAGE_SIZE + 1)  # unaligned


class TestVmaSet:
    def test_insert_and_find(self):
        s = VmaSet()
        s.insert(vma(10, 5))
        s.insert(vma(20, 5))
        assert s.find(12 * PAGE_SIZE).range == vr(10, 5)
        assert s.find(15 * PAGE_SIZE) is None
        assert len(s) == 2

    def test_overlap_rejected(self):
        s = VmaSet()
        s.insert(vma(10, 5))
        with pytest.raises(VmaSetError):
            s.insert(vma(12, 5))
        with pytest.raises(VmaSetError):
            s.insert(vma(8, 5))

    def test_adjacent_allowed(self):
        s = VmaSet()
        s.insert(vma(10, 5))
        s.insert(vma(15, 5))
        assert len(s) == 2

    def test_overlapping_query(self):
        s = VmaSet()
        s.insert(vma(0, 4))
        s.insert(vma(10, 4))
        s.insert(vma(20, 4))
        hits = s.overlapping(vr(2, 10))
        assert [v.range for v in hits] == [vr(0, 4), vr(10, 4)]

    def test_remove_exact(self):
        s = VmaSet()
        s.insert(vma(10, 5))
        removed = s.remove_range(vr(10, 5))
        assert len(removed) == 1
        assert len(s) == 0

    def test_remove_middle_splits(self):
        s = VmaSet()
        s.insert(vma(10, 10))
        removed = s.remove_range(vr(13, 3))
        assert [v.range for v in removed] == [vr(13, 3)]
        remaining = sorted(v.range.start for v in s)
        assert remaining == [10 * PAGE_SIZE, 16 * PAGE_SIZE]
        assert s.find(13 * PAGE_SIZE) is None
        assert s.find(11 * PAGE_SIZE) is not None

    def test_remove_spanning_multiple_vmas(self):
        s = VmaSet()
        s.insert(vma(0, 4))
        s.insert(vma(4, 4))
        s.insert(vma(8, 4))
        removed = s.remove_range(vr(2, 8))
        assert sum(v.n_pages for v in removed) == 8
        assert s.find(0) is not None
        assert s.find(2 * PAGE_SIZE) is None
        assert s.find(10 * PAGE_SIZE) is not None

    def test_remove_unmapped_gap_ok(self):
        s = VmaSet()
        s.insert(vma(0, 2))
        removed = s.remove_range(vr(5, 2))
        assert removed == []

    def test_total_pages_and_highest_end(self):
        s = VmaSet()
        s.insert(vma(0, 2))
        s.insert(vma(10, 3))
        assert s.total_pages() == 5
        assert s.highest_end() == 13 * PAGE_SIZE
