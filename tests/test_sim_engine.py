"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import (
    MSEC,
    SEC,
    USEC,
    AllOf,
    Signal,
    SimulationError,
    Simulator,
    Timeout,
)


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.after(30, order.append, "c")
        sim.after(10, order.append, "a")
        sim.after(20, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.after(5, order.append, tag)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.after(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_absolute_scheduling(self):
        sim = Simulator()
        sim.after(10, lambda: None)
        sim.run()
        sim.at(100, lambda: None)
        sim.run()
        assert sim.now == 100

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.after(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.after(10, fired.append, 1)
        handle.cancel()
        sim.run()
        assert fired == []

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.after(10, fired.append, 1)
        sim.after(100, fired.append, 2)
        sim.run(until=50)
        assert fired == [1]
        assert sim.now == 50
        sim.run()
        assert fired == [1, 2]

    def test_run_until_exact_boundary_inclusive(self):
        sim = Simulator()
        fired = []
        sim.after(50, fired.append, 1)
        sim.run(until=50)
        assert fired == [1]

    def test_max_events_limit(self):
        sim = Simulator()
        fired = []
        for _ in range(10):
            sim.after(1, fired.append, 1)
        sim.run(max_events=3)
        assert len(fired) == 3

    def test_pending_counts_uncancelled(self):
        sim = Simulator()
        h1 = sim.after(10, lambda: None)
        sim.after(20, lambda: None)
        h1.cancel()
        assert sim.pending() == 1

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.after(5, order.append, "nested")

        sim.after(10, first)
        sim.run()
        assert order == ["first", "nested"]
        assert sim.now == 15

    def test_time_constants(self):
        assert USEC == 1_000
        assert MSEC == 1_000_000
        assert SEC == 1_000_000_000


class TestSignal:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        sig = sim.signal()
        got = []
        sig.add_callback(lambda s: got.append(s.value))
        sig.succeed(42)
        assert got == [42]

    def test_callback_after_trigger_fires_immediately(self):
        sim = Simulator()
        sig = sim.signal()
        sig.succeed("x")
        got = []
        sig.add_callback(lambda s: got.append(s.value))
        assert got == ["x"]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        sig = sim.signal()
        sig.succeed()
        with pytest.raises(SimulationError):
            sig.succeed()

    def test_timeout_signal_fires_after_delay(self):
        sim = Simulator()
        sig = sim.timeout_signal(25, "done")
        sim.run()
        assert sig.triggered and sig.value == "done"
        assert sim.now == 25


class TestProcess:
    def test_timeout_sequence(self):
        sim = Simulator()
        trace = []

        def body():
            trace.append(sim.now)
            yield Timeout(10)
            trace.append(sim.now)
            yield Timeout(5)
            trace.append(sim.now)

        sim.spawn(body())
        sim.run()
        assert trace == [0, 10, 15]

    def test_return_value_and_done_signal(self):
        sim = Simulator()

        def body():
            yield Timeout(1)
            return "result"

        proc = sim.spawn(body())
        sim.run()
        assert proc.value == "result"
        assert proc.done.triggered
        assert not proc.alive

    def test_wait_on_signal_receives_value(self):
        sim = Simulator()
        sig = sim.signal()
        got = []

        def body():
            value = yield sig
            got.append((sim.now, value))

        sim.spawn(body())
        sim.after(30, sig.succeed, "hello")
        sim.run()
        assert got == [(30, "hello")]

    def test_wait_on_child_process(self):
        sim = Simulator()

        def child():
            yield Timeout(20)
            return 7

        def parent():
            value = yield sim.spawn(child())
            return value + 1

        proc = sim.spawn(parent())
        sim.run()
        assert proc.value == 8

    def test_allof_waits_for_all(self):
        sim = Simulator()
        s1, s2 = sim.signal(), sim.signal()
        done_at = []

        def body():
            values = yield AllOf([s1, s2, Timeout(5)])
            done_at.append((sim.now, values[:2]))

        sim.spawn(body())
        sim.after(10, s1.succeed, "a")
        sim.after(40, s2.succeed, "b")
        sim.run()
        assert done_at == [(40, ["a", "b"])]

    def test_allof_empty(self):
        sim = Simulator()

        def body():
            yield AllOf([])
            return "ok"

        proc = sim.spawn(body())
        sim.run()
        assert proc.value == "ok"

    def test_yield_from_composition(self):
        sim = Simulator()

        def inner():
            yield Timeout(5)
            return 10

        def outer():
            a = yield from inner()
            b = yield from inner()
            return a + b

        proc = sim.spawn(outer())
        sim.run()
        assert proc.value == 20
        assert sim.now == 10

    def test_interrupt_kills_process(self):
        sim = Simulator()
        trace = []

        def body():
            trace.append("start")
            yield Timeout(100)
            trace.append("never")

        proc = sim.spawn(body())
        sim.run(until=10)
        proc.interrupt()
        sim.run()
        assert trace == ["start"]
        assert proc.done.triggered

    def test_unsupported_yield_raises(self):
        sim = Simulator()

        def body():
            yield 42

        sim.spawn(body())
        with pytest.raises(SimulationError):
            sim.run()


class TestChoiceHook:
    """The ready-set choice hook the model checker drives dispatch through."""

    @staticmethod
    def _race(sim, log):
        for tag in "abc":
            sim.at(100, log.append, tag)
        sim.at(50, log.append, "early")
        sim.after(200, log.append, "late")

    def test_none_choice_matches_default_order(self):
        plain = Simulator()
        plain_log = []
        self._race(plain, plain_log)
        plain.run()

        hooked = Simulator(choice_hook=lambda ready: None)
        hooked_log = []
        self._race(hooked, hooked_log)
        hooked.run()
        assert hooked_log == plain_log == ["early", "a", "b", "c", "late"]

    def test_hook_sees_full_ready_set_each_dispatch(self):
        sizes = []

        def hook(ready):
            sizes.append(len(ready))
            return 0

        sim = Simulator(choice_hook=hook)
        log = []
        self._race(sim, log)
        sim.run()
        # Singletons dispatch alone; the t=100 race shrinks 3 -> 2 -> 1.
        assert sizes == [1, 3, 2, 1, 1]

    def test_choice_permutes_same_instant_events(self):
        sim = Simulator(choice_hook=lambda ready: len(ready) - 1)
        log = []
        self._race(sim, log)
        sim.run()
        assert log == ["early", "c", "b", "a", "late"]

    def test_step_uses_hook(self):
        sim = Simulator(choice_hook=lambda ready: len(ready) - 1)
        log = []
        sim.at(1, log.append, "x")
        sim.at(1, log.append, "y")
        assert sim.step() and log == ["y"]
        assert sim.step() and log == ["y", "x"]
        assert not sim.step()
        assert sim.pending() == 0

    def test_out_of_range_choice_raises(self):
        sim = Simulator(choice_hook=lambda ready: 7)
        sim.at(1, lambda: None)
        with pytest.raises(SimulationError):
            sim.run()

    def test_hook_forces_heap_mode(self):
        sim = Simulator(use_timer_wheel=True, choice_hook=lambda r: None)
        assert not sim._use_wheel

    def test_cancelled_events_never_reach_hook(self):
        seen = []
        sim = Simulator(choice_hook=lambda ready: seen.append(len(ready)))
        log = []
        keep = sim.at(10, log.append, "keep")
        victim = sim.at(10, log.append, "victim")
        victim.cancel()
        sim.run()
        assert log == ["keep"]
        assert seen == [1]
        assert keep.time == 10

    def test_until_respected_with_hook(self):
        sim = Simulator(choice_hook=lambda r: None)
        log = []
        sim.at(10, log.append, "in")
        sim.at(500, log.append, "out")
        sim.run(until=100)
        assert log == ["in"]
        assert sim.now == 100
        sim.run()
        assert log == ["in", "out"]
