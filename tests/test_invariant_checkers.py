"""The invariant checkers must *detect* violations, not just stay silent.

These negative tests corrupt the machine state by hand and assert that
each checker reports it -- otherwise a green property-based suite proves
nothing.
"""

import pytest

from repro import build_system
from repro.hw.tlb import TlbEntry
from repro.kernel.invariants import (
    check_frame_refcounts,
    check_lazy_vrange_isolation,
    check_no_stale_entries_for,
    check_tlb_frame_safety,
)
from repro.mm.addr import PAGE_SIZE, VirtRange
from repro.mm.vma import Prot, Vma

from helpers import make_proc, run_to_completion


def mapped_system():
    system = build_system("latr", cores=2)
    kernel = system.kernel
    proc, tasks = make_proc(system)
    box = {}

    def body():
        t0, c0 = tasks[0], kernel.machine.core(0)
        vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
        yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
        box["vrange"] = vrange

    run_to_completion(system, body())
    return system, proc, box["vrange"]


class TestTlbFrameSafetyChecker:
    def test_clean_state_passes(self):
        system, proc, vrange = mapped_system()
        assert check_tlb_frame_safety(system.kernel) == []

    def test_detects_freed_frame_translation(self):
        system, proc, vrange = mapped_system()
        kernel = system.kernel
        pfn = proc.mm.page_table.walk(vrange.vpn_start).pfn
        # Corrupt: free the frame while the TLB entry remains.
        proc.mm.page_table.clear_pte(vrange.vpn_start)
        kernel.frames.put(pfn)
        violations = check_tlb_frame_safety(kernel)
        assert violations and "FREED" in violations[0]

    def test_detects_recycled_frame(self):
        system, proc, vrange = mapped_system()
        kernel = system.kernel
        pfn = proc.mm.page_table.walk(vrange.vpn_start).pfn
        proc.mm.page_table.clear_pte(vrange.vpn_start)
        kernel.frames.put(pfn)
        # Reallocate until the same pfn comes back.
        for _ in range(kernel.frames.total_frames):
            got = kernel.frames.alloc(0)
            if got == pfn:
                break
        violations = check_tlb_frame_safety(kernel)
        assert violations and "RECYCLED" in violations[0]


class TestRefcountChecker:
    def test_detects_leaked_reference(self):
        system, proc, vrange = mapped_system()
        kernel = system.kernel
        pfn = proc.mm.page_table.walk(vrange.vpn_start).pfn
        kernel.frames.get(pfn)  # reference nobody can enumerate
        violations = check_frame_refcounts(kernel)
        assert violations and f"frame {pfn}" in violations[0]

    def test_detects_missing_reference(self):
        system, proc, vrange = mapped_system()
        kernel = system.kernel
        proc.mm.defer_frames([proc.mm.page_table.walk(vrange.vpn_start).pfn])
        # Now the frame is enumerated twice (PTE + lazy list) but only has
        # one refcount.
        assert check_frame_refcounts(kernel)


class TestLazyVrangeChecker:
    def test_detects_remap_of_lazy_range(self):
        system, proc, vrange = mapped_system()
        mm = proc.mm
        other = VirtRange(vrange.end, vrange.end + PAGE_SIZE)
        mm.defer_vrange(other)
        # Corrupt: map a VMA right on top of the lazily-freed range.
        mm.vmas.insert(Vma(range=other, prot=Prot.rw()))
        violations = check_lazy_vrange_isolation(system.kernel)
        assert violations and "overlaps lazy range" in violations[0]


class TestStaleEntryChecker:
    def test_reports_then_clears(self):
        system, proc, vrange = mapped_system()
        kernel = system.kernel
        # Manually plant a stale entry on the remote core.
        remote = kernel.machine.core(1)
        remote.tlb.fill(
            proc.mm.pcid,
            vrange.vpn_start,
            TlbEntry(pfn=0, debug_mm_id=proc.mm.mm_id),
        )
        assert check_no_stale_entries_for(kernel, proc.mm, vrange)
        # The checker lists *every* entry in the range (it is meant to be
        # called after an unmap); flush both cores to clear it fully.
        remote.tlb.flush()
        kernel.machine.core(0).tlb.flush()
        assert check_no_stale_entries_for(kernel, proc.mm, vrange) == []
