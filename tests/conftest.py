"""Pytest configuration: put the tests directory on sys.path so test
modules can `import helpers`."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
