"""Unit tests for the core execution model and the IPI interconnect."""

import pytest

from repro.hw.latency import DEFAULT_LATENCY
from repro.hw.machine import Machine
from repro.hw.spec import COMMODITY_2S16C, LARGE_NUMA_8S120C
from repro.sim.engine import Simulator


def make_machine(spec=COMMODITY_2S16C):
    sim = Simulator()
    return sim, Machine(sim, spec)


class TestCoreExecute:
    def test_execute_takes_exactly_work_time(self):
        sim, machine = make_machine()
        core = machine.core(0)

        def body():
            yield from core.execute(12_345)

        proc = sim.spawn(body())
        sim.run()
        assert sim.now == 12_345
        assert core.busy_ns_total == 12_345

    def test_interrupt_time_extends_execution(self):
        sim, machine = make_machine()
        core = machine.core(0)

        def body():
            yield from core.execute(100_000)

        sim.spawn(body())
        sim.after(30_000, core.deliver_interrupt, 5_000)
        sim.run()
        assert sim.now == 105_000

    def test_steal_time_extends_execution(self):
        sim, machine = make_machine()
        core = machine.core(0)

        def body():
            yield from core.execute(50_000)

        sim.spawn(body())
        sim.after(10_000, core.steal_time, 2_000)
        sim.run()
        assert sim.now == 52_000

    def test_negative_work_rejected(self):
        sim, machine = make_machine()
        core = machine.core(0)
        with pytest.raises(ValueError):
            list(core.execute(-1))

    def test_handlers_serialize(self):
        sim, machine = make_machine()
        core = machine.core(0)
        done1 = core.deliver_interrupt(1_000)
        done2 = core.deliver_interrupt(1_000)
        assert done1 == 1_000
        assert done2 == 2_000  # queued behind the first
        assert core.interrupts_received == 2

    def test_idle_transitions(self):
        sim, machine = make_machine()
        core = machine.core(0)
        core.enter_idle()
        assert core.idle and core.lazy_tlb_mode
        core.needs_flush_on_wake = True
        core.tlb.fill(1, 5, __import__("repro.hw.tlb", fromlist=["TlbEntry"]).TlbEntry(pfn=1))
        flushed = core.exit_idle(task=object())
        assert flushed == 1
        assert len(core.tlb) == 0
        assert not core.lazy_tlb_mode


class TestInterconnect:
    def test_multicast_no_targets_completes_immediately(self):
        sim, machine = make_machine()
        send_cost, acked = machine.interconnect.multicast_ipi(machine.core(0), [], 500)
        assert send_cost == 0
        sim.run()
        assert acked.triggered

    def test_single_target_same_socket_timing(self):
        sim, machine = make_machine()
        lat = machine.latency
        src, dst = machine.core(0), machine.core(1)
        send_cost, acked = machine.interconnect.multicast_ipi(src, [dst], 1_000)
        assert send_cost == lat.ipi_send(0)
        sim.run()
        expected = lat.ipi_send(0) + lat.ipi_delivery(0) + 1_000 + lat.ack_transfer(0)
        assert sim.now == expected
        assert dst.interrupts_received == 1

    def test_cross_socket_costs_more(self):
        sim, machine = make_machine()
        src = machine.core(0)
        _, acked_local = machine.interconnect.multicast_ipi(src, [machine.core(1)], 1_000)
        sim.run()
        local_done = sim.now

        sim2, machine2 = make_machine()
        src2 = machine2.core(0)
        _, acked_remote = machine2.interconnect.multicast_ipi(src2, [machine2.core(8)], 1_000)
        sim2.run()
        assert sim2.now > local_done

    def test_multicast_waits_for_slowest(self):
        sim, machine = make_machine()
        src = machine.core(0)
        targets = [machine.core(1), machine.core(8)]  # local + remote socket
        _, acked = machine.interconnect.multicast_ipi(src, targets, 1_000)
        sim.run()
        assert acked.triggered
        ack_times = acked.value
        assert len(ack_times) == 2
        assert sim.now == max(ack_times)

    def test_send_occupancy_accumulates_per_target(self):
        sim, machine = make_machine()
        lat = machine.latency
        src = machine.core(0)
        targets = [machine.core(i) for i in range(1, 8)]
        send_cost, _ = machine.interconnect.multicast_ipi(src, targets, 500)
        assert send_cost == 7 * lat.ipi_send(0)

    def test_ipi_counters(self):
        sim, machine = make_machine()
        src = machine.core(0)
        machine.interconnect.multicast_ipi(src, [machine.core(1), machine.core(2)], 500)
        sim.run()
        assert machine.stats.counter("ipi.sent").value == 2
        assert machine.stats.counter("ipi.handled").value == 2


class TestLatencyModel:
    def test_hop_clamping(self):
        lat = DEFAULT_LATENCY
        assert lat.ipi_send(5) == lat.ipi_send(2)
        with pytest.raises(ValueError):
            lat.ipi_send(-1)

    def test_full_flush_rule(self):
        lat = DEFAULT_LATENCY
        assert lat.local_invalidation(1, 32) == lat.tlb_invlpg_ns
        assert lat.local_invalidation(32, 32) == 32 * lat.tlb_invlpg_ns
        assert lat.local_invalidation(33, 32) == lat.tlb_full_flush_ns

    def test_handler_cost_rule(self):
        lat = DEFAULT_LATENCY
        small = lat.ipi_handler(2, 32)
        big = lat.ipi_handler(100, 32)
        assert small == lat.ipi_handler_base_ns + 2 * lat.tlb_invlpg_ns
        assert big == lat.ipi_handler_base_ns + lat.tlb_full_flush_ns

    def test_table5_constants(self):
        # Paper Table 5: the two LATR primitive costs.
        lat = DEFAULT_LATENCY
        assert lat.latr_state_write_ns == 132
        assert lat.latr_sweep_base_ns == 158

    def test_cacheline_local_vs_remote(self):
        lat = DEFAULT_LATENCY
        assert lat.cacheline(0) == lat.cacheline_local_ns
        assert lat.cacheline(1) > lat.cacheline(0)
