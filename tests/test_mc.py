"""Tests for the exhaustive small-scope model checker (``repro.verify.mc``).

The checker's own claims are tested here: the DPOR + state-hash reduction
reaches exactly the states brute force reaches, the healthy system's full
small-scope space is clean, every known-bad mutation is caught *within the
enumerated space* with a shrunk replayable counterexample, and sharded
exploration reports byte-identically to the serial DFS.
"""

import pytest

from repro.verify import MUTATIONS
from repro.verify.mc import (
    KINDS,
    McConfig,
    McExecutor,
    McScope,
    check_trace,
    generate_program,
    merge_cells,
    per_core_programs,
    racy_free_pages,
    root_actions,
    run_mc,
)


def _hashes(result):
    out = set()
    for cell in result.cells:
        out |= cell.state_hashes
    return out


class TestProgram:
    def test_round_robin_shape(self):
        program = generate_program(cores=3, pages=2, ops=7)
        assert len(program) == 7
        assert [op.core for op in program] == [i % 3 for i in range(7)]
        assert [op.page for op in program] == [i % 2 for i in range(7)]
        assert [op.kind for op in program] == [KINDS[i % len(KINDS)] for i in range(7)]
        assert len({op.key for op in program}) == 7

    def test_per_core_partition_preserves_order(self):
        program = generate_program(cores=2, pages=2, ops=6)
        split = per_core_programs(program, cores=2)
        assert sorted(op.idx for ops in split for op in ops) == list(range(6))
        for core, ops in enumerate(split):
            assert all(op.core == core for op in ops)
            assert [op.idx for op in ops] == sorted(op.idx for op in ops)


class TestReductionSoundness:
    def test_reduced_run_reaches_exactly_the_brute_force_states(self):
        scope = McScope(cores=2, pages=2, ops=4)
        brute = run_mc(McConfig(scope=scope, no_reduction=True, differential=False,
                                collect_hashes=True))
        reduced = run_mc(McConfig(scope=scope, differential=False,
                                  collect_hashes=True))
        assert brute.verdict == "ok"
        assert reduced.verdict == "ok"
        assert _hashes(brute) == _hashes(reduced)
        assert reduced.nodes <= brute.nodes
        assert reduced.hash_pruned + reduced.sleep_skipped > 0


class TestHealthyExploration:
    def test_small_scope_fully_explored_and_clean(self):
        result = run_mc(McConfig(scope=McScope(cores=2, pages=2, ops=4)))
        assert result.verdict == "ok"
        assert not any(c.incomplete for c in result.cells)
        assert result.counterexample is None
        assert sum(c.complete_leaves for c in result.cells) >= 1
        assert result.nodes > len(result.root_actions)

    def test_budget_exhaustion_reports_incomplete(self):
        result = run_mc(
            McConfig(scope=McScope(cores=2, pages=2, ops=4), max_nodes=3,
                     differential=False)
        )
        assert result.verdict == "incomplete"
        assert any(c.incomplete for c in result.cells)

    def test_empty_program_is_trivially_ok(self):
        result = run_mc(McConfig(scope=McScope(cores=2, pages=1, ops=0)))
        assert result.verdict == "ok"


class TestMutationAudit:
    @pytest.mark.parametrize("mutation", MUTATIONS)
    def test_mutation_caught_exhaustively_and_shrunk(self, mutation):
        config = McConfig(scope=McScope(cores=2, pages=2, ops=5, mutate=mutation))
        result = run_mc(config)
        assert result.verdict == "violation", mutation
        ce = result.counterexample
        assert ce is not None and ce.findings
        assert ce.shrunk is not None
        assert 0 < len(ce.shrunk) <= len(ce.trace)
        # The shrunk trace is a standalone replayable repro.
        assert check_trace(config, ce.shrunk), mutation


class TestShardingDeterminism:
    def test_healthy_jobs2_render_byte_identical(self):
        config = McConfig(scope=McScope(cores=2, pages=2, ops=4))
        assert run_mc(config, jobs=1).render() == run_mc(config, jobs=2).render()

    def test_mutated_jobs2_render_byte_identical(self):
        config = McConfig(
            scope=McScope(cores=2, pages=2, ops=5, mutate="reclaim_delay_zero")
        )
        assert run_mc(config, jobs=1).render() == run_mc(config, jobs=2).render()

    def test_merge_discards_cells_after_first_failure(self):
        config = McConfig(
            scope=McScope(cores=2, pages=2, ops=5, mutate="skip_sweep_invalidate")
        )
        roots = root_actions(config)
        from repro.verify.mc import explore_cell

        cells = [explore_cell(config, i) for i in range(len(roots))]
        merged = merge_cells(config, roots, cells)
        assert merged.verdict == "violation"
        failing = merged.cells[-1].cell
        assert all(c.cell <= failing for c in merged.cells)


class TestCheckTrace:
    def test_empty_trace_is_clean(self):
        assert check_trace(McConfig(scope=McScope(cores=2, pages=1, ops=2)), ()) == []

    def test_inapplicable_daemon_actions_are_skipped(self):
        # ddmin hands check_trace arbitrary subsequences; daemon actions
        # that are not enabled must be skipped, not flagged as stutters.
        config = McConfig(scope=McScope(cores=2, pages=1, ops=2))
        assert check_trace(config, ("reclaim", "sweep:c0", "reclaim")) == []

    def test_full_healthy_trace_is_clean(self):
        config = McConfig(scope=McScope(cores=2, pages=1, ops=2))
        executor = McExecutor(config.scope)
        trace = []
        while True:
            enabled = executor.enabled_actions()
            if not enabled:
                break
            executor.execute(enabled[0])
            trace.append(enabled[0])
        assert check_trace(config, tuple(trace)) == []


class TestExecutor:
    def test_root_actions_are_a_pure_function_of_scope(self):
        config = McConfig(scope=McScope(cores=3, pages=2, ops=5))
        assert root_actions(config) == root_actions(config)
        assert root_actions(config) == tuple(McExecutor(config.scope).enabled_actions())

    def test_state_hash_stable_across_fresh_boots(self):
        scope = McScope(cores=2, pages=2, ops=4)
        assert McExecutor(scope).state_hash() == McExecutor(scope).state_hash()

    def test_enabled_actions_change_state(self):
        # The stutter detector's precondition: every enabled action must
        # strictly change the canonical state on a healthy system.
        executor = McExecutor(McScope(cores=2, pages=1, ops=3))
        seen = {executor.state_hash()}
        while True:
            enabled = executor.enabled_actions()
            if not enabled:
                break
            executor.execute(enabled[0])
            h = executor.state_hash()
            assert h not in seen
            seen.add(h)


class TestRacyFreeNormalization:
    """Post-free staleness window: after ``madvise`` returns, remote cores
    may legally write through stale TLB entries onto the doomed frame under
    lazy coherence (the write is lost at reclaim, the slot ends absent)
    while synchronous mechanisms refault and end mapped.  The mechanism
    differential masks exactly those slots; ``racy_free_pages`` is the pure
    projection-to-slots function both legs apply."""

    def test_cross_core_touch_after_madvise_is_racy(self):
        keys = ("op:c3:i03:madvise:p0", "op:c0:i04:touch_w:p0")
        assert racy_free_pages(keys) == frozenset({0})

    def test_same_core_touch_is_not_racy(self):
        # The initiator's own TLB is invalidated inside the free op, so
        # its later touches are fully checked.
        keys = ("op:c1:i01:madvise:p2", "op:c1:i05:touch_r:p2")
        assert racy_free_pages(keys) == frozenset()

    def test_mmap_closes_the_staleness_window(self):
        keys = (
            "op:c0:i00:madvise:p1",
            "op:c1:i01:mmap:p1",
            "op:c2:i02:touch_w:p1",
        )
        assert racy_free_pages(keys) == frozenset()

    def test_untouched_freed_slot_is_not_racy(self):
        assert racy_free_pages(("op:c0:i00:madvise:p0",)) == frozenset()

    def test_shrunk_staleness_trace_is_clean(self):
        # Regression: the ddmin-shrunk 4c/3p/7ops counterexample produced
        # by the pre-normalization oracle.  c0 and c2 write p0 through
        # boot-time TLB entries after c3's madvise; the divergence vs the
        # synchronous mechanisms is legal bounded staleness and must be
        # masked.  Also exercises check_trace's drain extension: the
        # replicas must replay the deterministic drain, or the toggle and
        # revheap legs diverge artificially.
        config = McConfig(scope=McScope(cores=4, pages=3, ops=7))
        trace = (
            "op:c3:i03:madvise:p0",
            "op:c0:i00:touch_w:p0",
            "op:c0:i04:migrate:p1",
            "op:c1:i01:munmap:p1",
            "op:c1:i05:mmap:p2",
            "op:c2:i02:touch_r:p2",
            "op:c2:i06:touch_w:p0",
        )
        assert check_trace(config, trace) == []
