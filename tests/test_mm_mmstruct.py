"""Unit tests for MmStruct: VA allocation, lazy lists, cpumask."""

import pytest

from repro.mm.addr import PAGE_SIZE, VirtRange
from repro.mm.mmstruct import MmStruct
from repro.mm.pagecache import PageCache
from repro.mm.frames import FrameAllocator
from repro.sim.engine import Simulator


@pytest.fixture
def mm():
    return MmStruct(Simulator(), name="test")


class TestVaAllocation:
    def test_bump_allocation_disjoint(self, mm):
        a = mm.find_free_range(3 * PAGE_SIZE)
        b = mm.find_free_range(3 * PAGE_SIZE)
        assert not a.overlaps(b)

    def test_released_range_is_reused(self, mm):
        a = mm.find_free_range(4 * PAGE_SIZE)
        mm.release_vrange(a)
        b = mm.find_free_range(4 * PAGE_SIZE)
        assert b == a

    def test_first_fit_splits_larger_hole(self, mm):
        a = mm.find_free_range(8 * PAGE_SIZE)
        mm.release_vrange(a)
        b = mm.find_free_range(2 * PAGE_SIZE)
        assert b.start == a.start and b.n_pages == 2
        c = mm.find_free_range(6 * PAGE_SIZE)
        assert c.start == b.end

    def test_sub_page_rounds_up(self, mm):
        r = mm.find_free_range(1)
        assert r.n_pages == 1

    def test_lazy_range_not_reused(self, mm):
        """The virtual half of the paper's reuse invariant."""
        a = mm.find_free_range(4 * PAGE_SIZE)
        mm.defer_vrange(a)
        b = mm.find_free_range(4 * PAGE_SIZE)
        assert not a.overlaps(b)
        assert mm.vrange_is_lazy(a)

    def test_reclaim_moves_lazy_to_free(self, mm):
        a = mm.find_free_range(4 * PAGE_SIZE)
        mm.defer_vrange(a)
        mm.reclaim_vrange(a)
        assert not mm.vrange_is_lazy(a)
        b = mm.find_free_range(4 * PAGE_SIZE)
        assert b == a


class TestLazyFrames:
    def test_defer_take(self, mm):
        mm.defer_frames([1, 2, 3])
        assert mm.lazy_frames == [1, 2, 3]
        mm.take_lazy_frames([1, 2])
        assert mm.lazy_frames == [3]


class TestCpumask:
    def test_targets_exclude_initiator(self, mm):
        for c in (0, 2, 5):
            mm.mark_running_on(c)
        assert mm.shootdown_targets(2) == [0, 5]
        assert mm.shootdown_targets(9) == [0, 2, 5]

    def test_clear_cpu(self, mm):
        mm.mark_running_on(1)
        mm.clear_cpu(1)
        mm.clear_cpu(7)  # no-op
        assert mm.shootdown_targets(0) == []

    def test_generation_bumps(self, mm):
        g = mm.map_generation
        assert mm.bump_generation() == g + 1


class TestPageCache:
    def test_fill_and_hit(self):
        frames = FrameAllocator(1, 8)
        cache = PageCache(frames)
        pfn, cached = cache.get_or_fill("f", 0, node=0)
        assert not cached
        pfn2, cached2 = cache.get_or_fill("f", 0, node=0)
        assert cached2 and pfn2 == pfn
        assert cache.fills == 1 and cache.hits == 1

    def test_cache_holds_reference(self):
        frames = FrameAllocator(1, 8)
        cache = PageCache(frames)
        pfn, _ = cache.get_or_fill("f", 0, node=0)
        assert frames.refcount(pfn) == 1

    def test_evict(self):
        frames = FrameAllocator(1, 8)
        cache = PageCache(frames)
        pfn, _ = cache.get_or_fill("f", 3, node=0)
        assert cache.evict("f", 3)
        assert not frames.is_allocated(pfn)
        assert not cache.evict("f", 3)

    def test_lookup_miss(self):
        cache = PageCache(FrameAllocator(1, 8))
        assert cache.lookup("f", 0) is None
        assert cache.cached_pages() == 0
