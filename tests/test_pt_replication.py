"""Replicated per-NUMA-node page tables (numaPTE) test suite.

Covers the replica-coherence policy layer end to end:

* the ``use_pt_replication`` escape hatch: off-mode numaPTE degenerates to
  the Linux baseline *byte-identically* (stats summaries and canonical end
  states, across fuzz seeds),
* a hypothesis shadow-model property: after any mutation sequence, every
  materialized replica agrees entry-by-entry with a flat shadow dict,
* snapshot/restore round-trips the whole replica set hash-exactly,
* the ``broken_replica`` mutation is caught by the invariant monitor (the
  fuzzer leg; the model-checker leg lives in test_mc's mutation audit),
* walk-placement accounting: replication eliminates remote hardware walks
  for numaPTE while single-table mechanisms with hop-aware charging pay
  for them.
"""

from __future__ import annotations

import hashlib
import pickle

import hypothesis.strategies as st
import pytest
from helpers import make_proc, run_to_completion
from hypothesis import HealthCheck, given, settings

from repro import build_system
from repro.mm.addr import HUGE_PAGE_PAGES, PAGE_SIZE, VirtRange
from repro.mm.pagetable import PageTable, ReplicatedPageTable
from repro.mm.pte import make_huge_pte, make_present_pte
from repro.snapshot import restore_kernel, snapshot_kernel
from repro.verify import generate_plan, run_one


# ---------------------------------------------------------------------------
# Escape hatch: off-mode is byte-identical to the Linux baseline
# ---------------------------------------------------------------------------


class TestEscapeHatch:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_numapte_off_degenerates_to_linux_exactly(self, seed):
        """With replication forced off, numaPTE is LinuxShootdown plus a
        facade that is never built: event schedule, stats, and end state
        must all be bit-identical to the Linux baseline."""
        plan = generate_plan(seed, 50)
        base = run_one("linux", plan)
        off = run_one("numapte", plan, use_pt_replication=False)
        assert base.clean and off.clean
        assert off.stats_summary == base.stats_summary
        assert off.snapshot == base.snapshot
        assert off.sim_time_ns == base.sim_time_ns

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_replication_on_preserves_functional_end_state(self, seed):
        """Replication changes timing (fan-out charge, local walks), never
        the functional outcome: the canonical end state must match the
        baseline on every seed."""
        plan = generate_plan(seed, 50)
        base = run_one("linux", plan)
        on = run_one("numapte", plan)
        assert base.clean and on.clean
        assert on.snapshot == base.snapshot

    def test_on_mode_actually_replicates(self):
        plan = generate_plan(1, 50)
        on = run_one("numapte", plan)
        counters = {
            k: v for k, v in on.stats_summary.items() if k.startswith("count.pt.")
        }
        assert counters.get("count.pt.replica.updates", 0) > 0
        assert counters.get("count.pt.walk.local", 0) > 0
        # The whole point: replicated walks are never remote.
        assert "count.pt.walk.remote" not in counters

    def test_off_mode_run_has_no_replication_counters(self):
        plan = generate_plan(1, 50)
        off = run_one("numapte", plan, use_pt_replication=False)
        assert not any(k.startswith("count.pt.") for k in off.stats_summary)


# ---------------------------------------------------------------------------
# Hypothesis shadow-model property
# ---------------------------------------------------------------------------


_VPNS = st.integers(min_value=0, max_value=4 * HUGE_PAGE_PAGES - 1)
_HUGE_BASES = st.sampled_from([0, HUGE_PAGE_PAGES, 2 * HUGE_PAGE_PAGES])
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("set"), _VPNS, st.integers(1, 1 << 20)),
        st.tuples(st.just("clear"), _VPNS),
        st.tuples(st.just("update"), _VPNS, st.integers(1, 1 << 20)),
        st.tuples(st.just("set_huge"), _HUGE_BASES, st.integers(1, 1 << 20)),
        st.tuples(st.just("clear_huge"), _HUGE_BASES),
        st.tuples(st.just("walk_from"), st.integers(0, 3)),
    ),
    min_size=1,
    max_size=60,
)


class TestShadowModel:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=_OPS)
    def test_every_replica_agrees_with_flat_shadow(self, ops):
        pt = ReplicatedPageTable(nodes=4)
        shadow = {}  # vpn (or ("huge", base)) -> Pte

        def huge_covering(vpn):
            base = (vpn // HUGE_PAGE_PAGES) * HUGE_PAGE_PAGES
            return ("huge", base) if ("huge", base) in shadow else None

        for op in ops:
            kind = op[0]
            if kind == "set":
                vpn, pfn = op[1], op[2]
                if huge_covering(vpn):
                    continue  # set_pte under a huge mapping raises
                pte = make_present_pte(pfn)
                pt.set_pte(vpn, pte)
                shadow[vpn] = pte
            elif kind == "clear":
                vpn = op[1]
                pt.clear_pte(vpn)
                shadow.pop(vpn, None)
            elif kind == "update":
                vpn, pfn = op[1], op[2]
                key = huge_covering(vpn)
                if key is not None:
                    pte = make_huge_pte(pfn)
                    pt.update_pte(vpn, pte)
                    shadow[key] = pte
                elif vpn in shadow:
                    pte = make_present_pte(pfn)
                    pt.update_pte(vpn, pte)
                    shadow[vpn] = pte
            elif kind == "set_huge":
                base, pfn = op[1], op[2]
                covered = range(base, base + HUGE_PAGE_PAGES)
                if any(v in shadow for v in covered):
                    continue  # 4K entries block the huge install
                pte = make_huge_pte(pfn)
                pt.set_huge_pte(base, pte)
                shadow[("huge", base)] = pte
            elif kind == "clear_huge":
                base = op[1]
                pt.clear_huge_pte(base)
                shadow.pop(("huge", base), None)
            else:  # walk_from: materializes that node's replica
                pt.local_table(op[1])

            expected = sorted(
                (k[1] if isinstance(k, tuple) else k, pte)
                for k, pte in shadow.items()
            )
            assert sorted(pt.all_entries()) == expected
            for node, replica in pt.replicas().items():
                assert sorted(replica.all_entries()) == expected, f"node {node}"

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=_OPS)
    def test_pending_counts_cover_every_mirrored_update(self, ops):
        """Drained pending counts must sum to the lifetime fan-out count."""
        pt = ReplicatedPageTable(nodes=2)
        pt.local_table(1)
        drained = 0
        for i, op in enumerate(ops):
            if op[0] == "set":
                pt.set_pte(op[1], make_present_pte(op[2]))
            elif op[0] == "clear":
                pt.clear_pte(op[1])
            if i % 7 == 0:
                drained += sum(n for _node, n in pt.take_pending_updates())
        drained += sum(n for _node, n in pt.take_pending_updates())
        assert drained == pt.replica_updates
        assert pt.take_pending_updates() == ()


# ---------------------------------------------------------------------------
# Snapshot/restore round-trip
# ---------------------------------------------------------------------------


def _facade_sig(kernel) -> str:
    mm = next(iter(kernel.mm_registry.values()))
    pt = mm.page_table
    repl = {
        node: (sorted(r.all_entries()), r._count, r.table_pages_allocated)
        for node, r in pt.replicas().items()
    }
    blob = pickle.dumps(
        (
            sorted(pt.all_entries()),
            dict(pt._pending_updates),
            pt.replica_updates,
            pt.replica_materializations,
            repl,
        ),
        4,
    )
    return hashlib.blake2b(blob).hexdigest()


class TestSnapshotRoundTrip:
    def _touch(self, system, task, core_id, vrange, write):
        core = system.kernel.machine.core(core_id)
        sc = system.kernel.syscalls
        return run_to_completion(
            system,
            system.kernel.scheduler.run_on(
                core, task, sc.touch_pages(task, core, vrange, write=write)
            ),
        )

    def test_replica_set_round_trips_hash_exact(self):
        system = build_system("numapte", machine="commodity-2s16c")
        k = system.kernel
        proc, tasks = make_proc(system)
        core0 = k.machine.core(0)

        def body():
            vr = yield from k.syscalls.mmap(tasks[0], core0, 16 * PAGE_SIZE)
            yield from k.syscalls.touch_pages(tasks[0], core0, vr, write=True)
            return vr

        vr = run_to_completion(
            system, k.scheduler.run_on(core0, tasks[0], body())
        )
        # A read from the remote socket materializes node 1's replica.
        self._touch(system, tasks[8], 8, vr, write=False)
        pt = proc.mm.page_table
        assert isinstance(pt, ReplicatedPageTable)
        assert pt.replica_materializations == 1 and list(pt.replicas()) == [1]

        sig0 = _facade_sig(k)
        snap = snapshot_kernel(k)

        def unmap():
            half = VirtRange(vr.start, vr.start + 8 * PAGE_SIZE)
            yield from k.syscalls.munmap(tasks[0], core0, half)

        run_to_completion(system, k.scheduler.run_on(core0, tasks[0], unmap()))
        assert _facade_sig(k) != sig0

        restore_kernel(k, snap)
        assert _facade_sig(k) == sig0
        # Restore is identity-preserving: same facade and replica objects.
        assert proc.mm.page_table is pt
        # And the restored world still runs: replay the unmap.
        run_to_completion(system, k.scheduler.run_on(core0, tasks[0], unmap()))
        assert _facade_sig(k) != sig0

    def test_replica_materialized_after_snapshot_is_dropped_on_restore(self):
        system = build_system("numapte", machine="commodity-2s16c")
        k = system.kernel
        proc, tasks = make_proc(system, n_threads=1)
        core0 = k.machine.core(0)

        def body():
            vr = yield from k.syscalls.mmap(tasks[0], core0, 4 * PAGE_SIZE)
            yield from k.syscalls.touch_pages(tasks[0], core0, vr, write=True)

        run_to_completion(system, k.scheduler.run_on(core0, tasks[0], body()))
        pt = proc.mm.page_table
        snap = snapshot_kernel(k)
        assert pt.replicas() == {}
        pt.local_table(1)  # materialize after the snapshot
        assert list(pt.replicas()) == [1]
        restore_kernel(k, snap)
        assert pt.replicas() == {}
        assert pt.replica_materializations == 0


# ---------------------------------------------------------------------------
# Mutation detection (fuzzer leg; MC leg: test_mc TestMutationAudit)
# ---------------------------------------------------------------------------


class TestBrokenReplicaDetection:
    def test_monitor_flags_broken_replica(self):
        plan = generate_plan(1, 60)
        result = run_one("latr", plan, mutate="broken_replica")
        assert result.violations
        assert any(v.check == "replica_coherence" for v in result.violations)

    def test_healthy_numapte_same_plan_is_clean(self):
        plan = generate_plan(1, 60)
        result = run_one("numapte", plan)
        assert result.violations == []
        assert result.errors == []


# ---------------------------------------------------------------------------
# Walk placement accounting
# ---------------------------------------------------------------------------


class TestWalkPlacement:
    def test_single_table_with_hop_charging_pays_remote_walks(self):
        """Force the hop-aware walk model on for plain Linux: the single
        table lives on node 0, so walks from the remote socket show up as
        remote and carry nanoseconds."""
        plan = generate_plan(2, 50)
        res = run_one("linux", plan, use_pt_replication=True)
        assert res.clean
        remote = res.stats_summary.get("count.pt.walk.remote", 0)
        remote_ns = res.stats_summary.get("count.pt.walk.remote_ns", 0)
        assert remote > 0
        assert remote_ns > 0
        # No facade is built for a mechanism that does not want replicas.
        assert res.stats_summary.get("count.pt.replica.updates", 0) == 0

    def test_numapte_eliminates_remote_walks_on_same_plan(self):
        plan = generate_plan(2, 50)
        res = run_one("numapte", plan)
        assert res.clean
        assert res.stats_summary.get("count.pt.walk.remote", 0) == 0
        assert res.stats_summary.get("count.pt.walk.local", 0) > 0
