"""Unit tests for the frame allocator (refcounts, generations, NUMA)."""

import pytest

from repro.mm.frames import FrameAllocator, FrameAllocatorError


class TestAllocation:
    def test_alloc_prefers_node(self):
        frames = FrameAllocator(nodes=2, frames_per_node=4)
        pfn = frames.alloc(node=1)
        assert frames.node_of(pfn) == 1

    def test_fallback_to_other_node(self):
        frames = FrameAllocator(nodes=2, frames_per_node=2)
        for _ in range(2):
            frames.alloc(node=0)
        pfn = frames.alloc(node=0)
        assert frames.node_of(pfn) == 1

    def test_out_of_memory(self):
        frames = FrameAllocator(nodes=1, frames_per_node=1)
        frames.alloc()
        with pytest.raises(FrameAllocatorError):
            frames.alloc()

    def test_counts(self):
        frames = FrameAllocator(nodes=2, frames_per_node=3)
        assert frames.total_frames == 6
        assert frames.free_count() == 6
        frames.alloc(0)
        assert frames.free_count() == 5
        assert frames.free_count(0) == 2
        assert frames.allocated_count() == 1

    def test_bad_node_rejected(self):
        frames = FrameAllocator(nodes=1, frames_per_node=1)
        with pytest.raises(ValueError):
            frames.alloc(node=5)


class TestRefcounting:
    def test_alloc_starts_at_one(self):
        frames = FrameAllocator(1, 4)
        pfn = frames.alloc()
        assert frames.refcount(pfn) == 1

    def test_get_put_cycle(self):
        frames = FrameAllocator(1, 4)
        pfn = frames.alloc()
        frames.get(pfn)
        assert frames.refcount(pfn) == 2
        assert frames.put(pfn) is False
        assert frames.put(pfn) is True
        assert not frames.is_allocated(pfn)

    def test_double_free_detected(self):
        frames = FrameAllocator(1, 4)
        pfn = frames.alloc()
        frames.put(pfn)
        with pytest.raises(FrameAllocatorError):
            frames.put(pfn)

    def test_get_on_free_frame_rejected(self):
        frames = FrameAllocator(1, 4)
        pfn = frames.alloc()
        frames.put(pfn)
        with pytest.raises(FrameAllocatorError):
            frames.get(pfn)

    def test_refcount_of_free_frame_is_zero(self):
        frames = FrameAllocator(1, 4)
        assert frames.refcount(0) == 0


class TestGenerations:
    def test_generation_bumps_on_free(self):
        frames = FrameAllocator(1, 1)
        pfn = frames.alloc()
        gen0 = frames.generation(pfn)
        frames.put(pfn)
        assert frames.generation(pfn) == gen0 + 1

    def test_reuse_has_new_generation(self):
        """The safety hook behind LATR's reuse invariant: a TLB entry that
        snapshotted the old generation can be proven stale."""
        frames = FrameAllocator(1, 1)
        pfn = frames.alloc()
        snapshot = frames.generation(pfn)
        frames.put(pfn)
        pfn2 = frames.alloc()
        assert pfn2 == pfn  # the only frame comes back
        assert frames.generation(pfn2) != snapshot

    def test_frees_recycle_fifo(self):
        frames = FrameAllocator(1, 2)
        a = frames.alloc()
        b = frames.alloc()
        frames.put(a)
        frames.put(b)
        assert frames.alloc() == a
        assert frames.alloc() == b

    def test_alloc_free_counters(self):
        frames = FrameAllocator(1, 4)
        pfn = frames.alloc()
        frames.put(pfn)
        assert frames.total_allocs == 1
        assert frames.total_frees == 1


class TestFrameBatch:
    def test_units_default_to_length(self):
        from repro.mm.frames import FrameBatch

        batch = FrameBatch([1, 2, 3])
        assert batch.free_units == 3
        assert FrameBatch.units_of(batch) == 3

    def test_compound_units_override(self):
        from repro.mm.frames import FrameBatch

        batch = FrameBatch(range(512), free_units=8)
        assert len(batch) == 512
        assert FrameBatch.units_of(batch) == 8

    def test_plain_list_counts_one_to_one(self):
        from repro.mm.frames import FrameBatch

        assert FrameBatch.units_of([7, 8]) == 2


class TestAllocExclude:
    def test_exclude_skips_range(self):
        frames = FrameAllocator(nodes=1, frames_per_node=8)
        pfn = frames.alloc(0, exclude=range(0, 4))
        assert pfn >= 4

    def test_exclude_preserves_excluded_frames(self):
        frames = FrameAllocator(nodes=1, frames_per_node=8)
        for _ in range(4):
            assert frames.alloc(0, exclude=range(0, 4)) >= 4
        # The excluded frames are still free and allocatable afterwards.
        assert frames.free_count() == 4
        assert frames.alloc(0) < 4

    def test_exclude_everything_raises(self):
        frames = FrameAllocator(nodes=1, frames_per_node=4)
        with pytest.raises(FrameAllocatorError):
            frames.alloc(0, exclude=range(0, 4))


class TestContiguousWatermark:
    """Regression tests: ``alloc_contiguous`` must keep the never-allocated
    frame range lazy (it used to materialize and re-sort the whole free
    list per call), and ``contiguous_run_available`` must not mutate."""

    def test_aligned_alloc_keeps_watermark_lazy(self):
        frames = FrameAllocator(nodes=1, frames_per_node=1 << 20)
        base = frames.alloc_contiguous(512, node=0)
        assert base == 0
        lo, hi, extra, tail = frames._free[0].state()
        # The run was cut off the front arithmetically: no extra segments,
        # no materialized tail of half a million integers.
        assert (lo, hi) == (512, 1 << 20)
        assert extra == ()
        assert tail == ()

    def test_mid_cut_splits_into_lazy_segments(self):
        frames = FrameAllocator(nodes=1, frames_per_node=64)
        assert frames.alloc(0) == 0
        assert frames.alloc(0) == 1
        # Frames 0..1 are taken, so the first aligned 4-run is [4, 8).
        base = frames.alloc_contiguous(4, node=0)
        assert base == 4
        lo, hi, extra, tail = frames._free[0].state()
        assert (lo, hi) == (2, 4)
        assert extra == ((8, 64),)
        assert tail == ()

    def test_drain_order_matches_eager_filter(self):
        frames = FrameAllocator(nodes=1, frames_per_node=16)
        frames.alloc_contiguous(4, node=0)  # takes [0, 4)
        pfn = frames.alloc(0)  # takes 4
        frames.put(pfn)  # recycled behind the fresh range
        expected = list(range(5, 16)) + [4]
        assert list(frames._free[0]) == expected
        assert [frames.alloc(0) for _ in range(len(expected))] == expected

    def test_unaligned_run_spanning_recycled_tail(self):
        frames = FrameAllocator(nodes=1, frames_per_node=8)
        taken = [frames.alloc(0) for _ in range(3)]  # 0, 1, 2
        for pfn in taken:
            frames.put(pfn)  # recycled: tail = [0, 1, 2], fresh = [3, 8)
        base = frames.alloc_contiguous(5, node=0, aligned=False)
        assert base == 0  # spans tail frames 0..2 plus fresh 3..4
        lo, hi, extra, tail = frames._free[0].state()
        assert (lo, hi) == (5, 8)
        assert tail == ()

    def test_contiguous_run_available_does_not_mutate(self):
        frames = FrameAllocator(nodes=1, frames_per_node=1 << 16)
        state_before = frames._free[0].state()
        version_before = frames._version
        assert frames.contiguous_run_available(512, node=0)
        assert not frames.contiguous_run_available(1 << 17, node=0)
        assert frames._free[0].state() == state_before
        assert frames._version == version_before

    def test_fragmented_node_raises(self):
        frames = FrameAllocator(nodes=1, frames_per_node=8)
        pfns = [frames.alloc(0) for _ in range(8)]
        for pfn in pfns[::2]:
            frames.put(pfn)  # only every other frame free: no 2-run
        with pytest.raises(FrameAllocatorError):
            frames.alloc_contiguous(2, node=0)
