"""Edge cases of the VM syscall surface: mremap resizing, fork chains,
madvise/munmap interleavings, protection games."""

import pytest

from repro import build_system
from repro.kernel.invariants import check_all
from repro.mm.addr import PAGE_SIZE, VirtRange
from repro.mm.fault import SegmentationFault
from repro.mm.vma import Prot

from helpers import make_proc, run_to_completion, drain


class TestMremap:
    def _grown(self, grow_pages):
        system = build_system("latr", cores=2)
        kernel = system.kernel
        proc, tasks = make_proc(system)
        out = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            old = yield from kernel.syscalls.mmap(t0, c0, 4 * PAGE_SIZE, populate=True)
            pfns = [
                kernel.mm_registry[proc.mm.pcid].page_table.walk(v).pfn
                for v in old.vpns()
            ]
            new = yield from kernel.syscalls.mremap(t0, c0, old, grow_pages * PAGE_SIZE)
            out.update(old=old, new=new, pfns=pfns)

        run_to_completion(system, body())
        return system, proc, out

    def test_grow_preserves_frames(self):
        system, proc, out = self._grown(8)
        new = out["new"]
        assert new.n_pages == 8
        moved = [
            proc.mm.page_table.walk(new.vpn_start + i).pfn for i in range(4)
        ]
        assert moved == out["pfns"]
        # The tail is demand-zero (unmapped until touched).
        assert proc.mm.page_table.walk(new.vpn_start + 5) is None
        assert check_all(system.kernel) == []

    def test_shrink_frees_tail_frames(self):
        system, proc, out = self._grown(2)
        new = out["new"]
        assert new.n_pages == 2
        # The two cut-off frames were released.
        for pfn in out["pfns"][2:]:
            assert not system.kernel.frames.is_allocated(pfn)
        assert check_all(system.kernel) == []

    def test_old_range_reusable_immediately(self):
        """mremap is synchronous (Table 1): the old range can be remapped
        at once, even under LATR."""
        system, proc, out = self._grown(4)
        kernel = system.kernel
        box = {}

        def remap():
            t0, c0 = proc.tasks[0], kernel.machine.core(0)
            again = yield from kernel.syscalls.mmap(t0, c0, 4 * PAGE_SIZE)
            box["again"] = again

        run_to_completion(system, remap())
        assert box["again"] == out["old"]

    def test_mremap_unmapped_raises(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)
        bogus = VirtRange.from_pages(0x999000, 2)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            yield from kernel.syscalls.mremap(t0, c0, bogus, PAGE_SIZE)

        system.sim.spawn(body())
        with pytest.raises(SegmentationFault):
            drain(system, ms=10)


class TestForkChains:
    def test_grandchild_shares_until_write(self):
        system = build_system("latr", cores=4)
        kernel = system.kernel
        proc, tasks = make_proc(system, n_threads=1)
        out = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE, populate=True)
            pfn = proc.mm.page_table.walk(vrange.vpn_start).pfn

            child = yield from kernel.syscalls.fork(t0, c0, "child")
            child_task = kernel.spawn_thread(child, "t0", 1)
            c1 = kernel.machine.core(1)
            grand = yield from kernel.syscalls.fork(child_task, c1, "grand")
            grand_task = kernel.spawn_thread(grand, "t0", 2)

            # Three generations share one frame.
            assert kernel.frames.refcount(pfn) == 3
            # Grandchild writes: breaks its CoW only.
            c2 = kernel.machine.core(2)
            yield from kernel.syscalls.access(grand_task, c2, vrange.start, write=True)
            out["pfn"] = pfn
            out["grand_pfn"] = grand.mm.page_table.walk(vrange.vpn_start).pfn
            out["child_pfn"] = child.mm.page_table.walk(vrange.vpn_start).pfn

        run_to_completion(system, body())
        assert out["grand_pfn"] != out["pfn"]
        assert out["child_pfn"] == out["pfn"]
        assert system.kernel.frames.refcount(out["pfn"]) == 2
        drain(system, ms=5)
        assert check_all(system.kernel) == []

    def test_fork_write_protects_parent(self):
        system = build_system("latr", cores=2)
        kernel = system.kernel
        proc, tasks = make_proc(system, n_threads=1)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE, populate=True)
            assert proc.mm.page_table.walk(vrange.vpn_start).writable
            yield from kernel.syscalls.fork(t0, c0, "child")
            pte = proc.mm.page_table.walk(vrange.vpn_start)
            assert not pte.writable and pte.cow

        run_to_completion(system, body())


class TestInterleavings:
    def test_madvise_then_munmap(self):
        system = build_system("latr", cores=4)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, 4 * PAGE_SIZE)
            for t in tasks:
                core = kernel.machine.core(t.home_core_id)
                yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
            yield from kernel.syscalls.madvise_dontneed(t0, c0, vrange)
            # Re-touch half, then unmap everything.
            yield from kernel.syscalls.access(t0, c0, vrange.start, write=True)
            yield from kernel.syscalls.munmap(t0, c0, vrange)

        run_to_completion(system, body())
        drain(system, ms=5)
        assert check_all(kernel) == []
        assert kernel.frames.allocated_count() == 0

    def test_double_munmap_is_harmless(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE, populate=True)
            yield from kernel.syscalls.munmap(t0, c0, vrange)
            yield from kernel.syscalls.munmap(t0, c0, vrange)

        run_to_completion(system, body())
        assert kernel.stats.counter("sys.munmap_empty").value == 1

    def test_partial_munmap_leaves_rest_mapped(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, 6 * PAGE_SIZE, populate=True)
            middle = VirtRange(vrange.start + 2 * PAGE_SIZE, vrange.start + 4 * PAGE_SIZE)
            yield from kernel.syscalls.munmap(t0, c0, middle)
            # Outside pieces still accessible, middle faults.
            yield from kernel.syscalls.access(t0, c0, vrange.start)
            yield from kernel.syscalls.access(t0, c0, vrange.end - PAGE_SIZE)
            assert len(proc.mm.vmas) == 2

        run_to_completion(system, body())
        drain(system, ms=5)
        assert check_all(kernel) == []

    def test_mprotect_ro_then_rw_restores_writes(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE, populate=True)
            yield from kernel.syscalls.mprotect(t0, c0, vrange, Prot.ro())
            yield from kernel.syscalls.mprotect(t0, c0, vrange, Prot.rw())
            yield from kernel.syscalls.access(t0, c0, vrange.start, write=True)

        run_to_completion(system, body())
        assert check_all(kernel) == []
