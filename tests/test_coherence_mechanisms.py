"""Behavioural tests for all four coherence mechanisms.

Each test builds a small system, maps and shares pages across cores, then
exercises a VM operation and asserts on *when* remote TLBs become clean,
*who* was interrupted, and *when* memory became reusable -- the three axes
on which the mechanisms differ (paper Table 2).
"""

import pytest

from repro import build_system
from repro.coherence.base import (
    LAZY_POSSIBLE,
    MECHANISM_PROPERTIES,
    OPERATION_CLASSES,
    OpClass,
)
from repro.kernel.invariants import check_all, check_no_stale_entries_for
from repro.mm.addr import PAGE_SIZE
from repro.sim.engine import MSEC

from helpers import make_proc, run_to_completion, drain


def map_and_share(system, tasks, n_pages=2):
    """Map a buffer and have every task touch it; returns the range."""
    kernel = system.kernel
    holder = {}

    def body():
        t0 = tasks[0]
        c0 = kernel.machine.core(t0.home_core_id)
        vrange = yield from kernel.syscalls.mmap(t0, c0, n_pages * PAGE_SIZE)
        for t in tasks:
            core = kernel.machine.core(t.home_core_id)
            yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
        holder["vrange"] = vrange

    run_to_completion(system, body())
    return holder["vrange"]


def resident_count(system, mm, vrange):
    """How many cores still hold TLB entries for vrange."""
    count = 0
    for core in system.kernel.machine.cores:
        for (pcid, vpn), entry in core.tlb.items():
            if entry.debug_mm_id == mm.mm_id and vrange.vpn_start <= vpn < vrange.vpn_end:
                count += 1
                break
    return count


@pytest.mark.parametrize("mech", ["linux", "abis", "barrelfish"])
class TestSynchronousMechanisms:
    def test_remote_tlbs_clean_at_munmap_return(self, mech):
        system = build_system(mech, cores=4)
        proc, tasks = make_proc(system)
        vrange = map_and_share(system, tasks)
        assert resident_count(system, proc.mm, vrange) == 4

        def do_unmap():
            yield from system.kernel.syscalls.munmap(
                tasks[0], system.kernel.machine.core(0), vrange
            )

        run_to_completion(system, do_unmap())
        # Synchronous: clean immediately, no tick needed.
        assert resident_count(system, proc.mm, vrange) == 0
        assert check_all(system.kernel) == []

    def test_frames_reusable_immediately(self, mech):
        system = build_system(mech, cores=4)
        proc, tasks = make_proc(system)
        vrange = map_and_share(system, tasks)
        free_before = system.kernel.frames.free_count()

        def do_unmap():
            yield from system.kernel.syscalls.munmap(
                tasks[0], system.kernel.machine.core(0), vrange
            )

        run_to_completion(system, do_unmap())
        assert system.kernel.frames.free_count() == free_before + vrange.n_pages
        assert not proc.mm.lazy_frames

    def test_table2_properties(self, mech):
        system = build_system(mech, cores=2)
        props = system.kernel.coherence.properties
        assert not props.asynchronous
        assert props.no_hardware_changes


class TestLinuxSpecifics:
    def test_ipis_sent_to_each_remote_core(self):
        system = build_system("linux", cores=4)
        proc, tasks = make_proc(system)
        vrange = map_and_share(system, tasks)

        def do_unmap():
            yield from system.kernel.syscalls.munmap(
                tasks[0], system.kernel.machine.core(0), vrange
            )

        run_to_completion(system, do_unmap())
        assert system.stats.counter("ipi.sent").value == 3
        assert system.stats.counter("ipi.handled").value == 3

    def test_remote_handler_full_flush_beyond_threshold(self):
        system = build_system("linux", cores=2)
        proc, tasks = make_proc(system)
        vrange = map_and_share(system, tasks, n_pages=40)  # > 32
        remote = system.kernel.machine.core(1)
        flushes_before = remote.tlb.full_flushes

        def do_unmap():
            yield from system.kernel.syscalls.munmap(
                tasks[0], system.kernel.machine.core(0), vrange
            )

        run_to_completion(system, do_unmap())
        assert remote.tlb.full_flushes == flushes_before + 1

    def test_idle_core_not_interrupted(self):
        """Linux's lazy-TLB idle optimization (paper 2.3)."""
        system = build_system("linux", cores=4)
        proc, tasks = make_proc(system)
        vrange = map_and_share(system, tasks)
        idle_core = system.kernel.machine.core(3)
        system.kernel.scheduler.task_exit(tasks[3])
        assert idle_core.lazy_tlb_mode

        def do_unmap():
            yield from system.kernel.syscalls.munmap(
                tasks[0], system.kernel.machine.core(0), vrange
            )

        run_to_completion(system, do_unmap())
        assert idle_core.interrupts_received == 0
        assert idle_core.needs_flush_on_wake
        assert system.stats.counter("shootdown.idle_skipped").value == 1
        # On wake the core full-flushes, restoring safety.
        flushed = idle_core.exit_idle(tasks[3])
        assert flushed == 1
        assert len(idle_core.tlb) == 0

    def test_no_remote_targets_no_ipis(self):
        system = build_system("linux", cores=4)
        proc, tasks = make_proc(system, n_threads=1)
        vrange = map_and_share(system, tasks[:1])

        def do_unmap():
            yield from system.kernel.syscalls.munmap(
                tasks[0], system.kernel.machine.core(0), vrange
            )

        run_to_completion(system, do_unmap())
        assert system.stats.counter("ipi.sent").value == 0


class TestAbisSpecifics:
    def test_targets_only_actual_sharers(self):
        system = build_system("abis", cores=4)
        proc, tasks = make_proc(system)
        kernel = system.kernel
        holder = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
            # Only cores 0 and 2 touch the page; 1 and 3 never do, but they
            # are in the mm cpumask (threads run there).
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
            t2, c2 = tasks[2], kernel.machine.core(2)
            yield from kernel.syscalls.touch_pages(t2, c2, vrange)
            holder["vrange"] = vrange
            yield from kernel.syscalls.munmap(t0, c0, vrange)

        run_to_completion(system, body())
        # Only core 2 needed an IPI (core 0 invalidates locally).
        assert system.stats.counter("ipi.sent").value == 1
        assert system.stats.counter("abis.fills_tracked").value >= 2

    def test_tracking_cost_charged_on_fill(self):
        sys_abis = build_system("abis", cores=1)
        sys_linux = build_system("linux", cores=1)
        times = {}
        for name, system in (("abis", sys_abis), ("linux", sys_linux)):
            proc, tasks = make_proc(system, n_threads=1)

            def body(system=system, tasks=tasks):
                t0, c0 = tasks[0], system.kernel.machine.core(0)
                vrange = yield from system.kernel.syscalls.mmap(t0, c0, 16 * PAGE_SIZE)
                start = system.sim.now
                yield from system.kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
                times[name] = system.sim.now - start

            run_to_completion(system, body())
        assert times["abis"] > times["linux"]


class TestBarrelfishSpecifics:
    def test_no_interrupts_but_messages(self):
        system = build_system("barrelfish", cores=4)
        proc, tasks = make_proc(system)
        vrange = map_and_share(system, tasks)

        def do_unmap():
            yield from system.kernel.syscalls.munmap(
                tasks[0], system.kernel.machine.core(0), vrange
            )

        run_to_completion(system, do_unmap())
        assert system.stats.counter("barrelfish.messages").value == 3
        assert system.stats.counter("ipi.sent").value == 0
        assert all(c.interrupts_received == 0 for c in system.kernel.machine.cores)
        assert resident_count(system, proc.mm, vrange) == 0

    def test_still_synchronous_wait(self):
        """Barrelfish removes the interrupt, not the ACK wait (Table 2)."""
        system = build_system("barrelfish", cores=4)
        proc, tasks = make_proc(system)
        vrange = map_and_share(system, tasks)
        durations = {}

        def do_unmap():
            start = system.sim.now
            yield from system.kernel.syscalls.munmap(
                tasks[0], system.kernel.machine.core(0), vrange
            )
            durations["munmap"] = system.sim.now - start

        run_to_completion(system, do_unmap())
        # Must include at least the poll delay round-trip.
        assert durations["munmap"] > system.kernel.coherence.poll_delay_ns


class TestTableData:
    def test_table1_classes(self):
        assert LAZY_POSSIBLE[OpClass.FREE]
        assert LAZY_POSSIBLE[OpClass.MIGRATION]
        assert not LAZY_POSSIBLE[OpClass.PERMISSION]
        assert not LAZY_POSSIBLE[OpClass.OWNERSHIP]
        assert not LAZY_POSSIBLE[OpClass.REMAP]
        assert len(OPERATION_CLASSES) == 9

    def test_table2_latr_row(self):
        latr = MECHANISM_PROPERTIES["LATR"]
        assert latr.asynchronous and latr.non_ipi
        assert latr.no_remote_core_involvement and latr.no_hardware_changes

    def test_table2_only_latr_asynchronous(self):
        async_rows = [n for n, p in MECHANISM_PROPERTIES.items() if p.asynchronous]
        assert async_rows == ["LATR"]
