"""Unit tests for the measurement machinery."""

import pytest

from repro.sim.engine import SEC, Simulator
from repro.sim.stats import (
    Counter,
    LatencyRecorder,
    RateWindow,
    StatsRegistry,
    weighted_mean,
)


class TestCounter:
    def test_add_defaults_to_one(self):
        c = Counter("x")
        c.add()
        c.add(5)
        assert c.value == 6


class TestLatencyRecorder:
    def test_summary_stats(self):
        rec = LatencyRecorder("lat")
        for v in (10, 20, 30, 40):
            rec.record(v)
        assert rec.count == 4
        assert rec.mean == 25
        assert rec.minimum == 10
        assert rec.maximum == 40
        assert rec.total == 100

    def test_percentiles(self):
        rec = LatencyRecorder("lat")
        for v in range(1, 101):
            rec.record(v)
        assert rec.percentile(50) == pytest.approx(50.5)
        assert rec.percentile(0) == 1
        assert rec.percentile(100) == 100

    def test_percentile_single_sample(self):
        rec = LatencyRecorder("lat")
        rec.record(7)
        assert rec.percentile(99) == 7.0

    def test_percentile_out_of_range(self):
        rec = LatencyRecorder("lat")
        rec.record(1)
        with pytest.raises(ValueError):
            rec.percentile(101)

    def test_negative_sample_rejected(self):
        rec = LatencyRecorder("lat")
        with pytest.raises(ValueError):
            rec.record(-1)

    def test_empty_recorder_is_zero(self):
        rec = LatencyRecorder("lat")
        assert rec.mean == 0.0
        assert rec.percentile(50) == 0.0
        assert rec.stdev == 0.0

    def test_stdev(self):
        rec = LatencyRecorder("lat")
        for v in (2, 4, 4, 4, 5, 5, 7, 9):
            rec.record(v)
        assert rec.stdev == pytest.approx(2.138, abs=1e-3)

    def test_percentile_cache_sees_same_length_mutation(self):
        # Regression: the stale-sorted-cache guard used to compare lengths
        # only, so an in-place mutation that kept len(samples) constant
        # served percentiles from the stale sorted copy.
        rec = LatencyRecorder("lat")
        for v in (10, 20, 30):
            rec.record(v)
        assert rec.percentile(100) == 30  # populate the cache
        rec.samples[2] = 300
        assert rec.percentile(100) == 300
        rec.samples.sort(reverse=True)
        assert rec.percentile(0) == 10
        del rec.samples[0]
        assert rec.percentile(100) == 20

    def test_percentile_cache_sees_reassignment(self):
        rec = LatencyRecorder("lat")
        for v in (1, 2, 3):
            rec.record(v)
        assert rec.percentile(50) == 2
        rec.samples = [5, 6, 7]
        assert rec.percentile(50) == 6

    def test_snapshot_restore_roundtrip_invalidates_cache(self):
        rec = LatencyRecorder("lat")
        for v in (10, 20, 30):
            rec.record(v)
        snap = rec.snapshot()
        assert rec.percentile(100) == 30
        rec.record(999)
        assert rec.percentile(100) == 999
        rec.restore(snap)
        assert rec.count == 3
        assert rec.percentile(100) == 30
        rec.samples[0] = 70  # version tracking still live after restore
        assert rec.percentile(100) == 70


class TestRateWindow:
    def test_rate_over_window(self):
        sim = Simulator()
        rate = RateWindow("r", sim)
        rate.start_window()
        for _ in range(10):
            rate.hit()
        sim.after(SEC // 2, lambda: None)
        sim.run()
        rate.stop_window()
        assert rate.per_second() == pytest.approx(20.0)

    def test_hits_outside_window_ignored(self):
        sim = Simulator()
        rate = RateWindow("r", sim)
        rate.hit()  # before window
        rate.start_window()
        rate.hit()
        sim.after(SEC, lambda: None)
        sim.run()
        rate.stop_window()
        rate.hit()  # after window
        assert rate.events == 1

    def test_no_window_is_zero(self):
        sim = Simulator()
        rate = RateWindow("r", sim)
        assert rate.per_second() == 0.0


class TestStatsRegistry:
    def test_counters_are_memoized(self):
        sim = Simulator()
        stats = StatsRegistry(sim)
        stats.counter("a").add()
        stats.counter("a").add()
        assert stats.counter("a").value == 2

    def test_summary_includes_all_kinds(self):
        sim = Simulator()
        stats = StatsRegistry(sim)
        stats.counter("c").add(3)
        stats.latency("l").record(10)
        stats.rate("r")
        summary = stats.summary()
        assert summary["count.c"] == 3
        assert summary["lat.l.mean_ns"] == 10
        assert "rate.r.per_sec" in summary

    def test_window_control(self):
        sim = Simulator()
        stats = StatsRegistry(sim)
        rate = stats.rate("x")
        stats.start_all_windows()
        rate.hit(4)
        sim.after(SEC, lambda: None)
        sim.run()
        stats.stop_all_windows()
        assert rate.per_second() == pytest.approx(4.0)


def test_weighted_mean():
    assert weighted_mean([(10, 1), (20, 3)]) == pytest.approx(17.5)
    assert weighted_mean([]) == 0.0
