"""Unit tests for the measurement machinery."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.sim.engine import SEC, Simulator
from repro.sim.stats import (
    Counter,
    LatencyRecorder,
    RateWindow,
    StatsRegistry,
    weighted_mean,
)


class TestCounter:
    def test_add_defaults_to_one(self):
        c = Counter("x")
        c.add()
        c.add(5)
        assert c.value == 6


class TestLatencyRecorder:
    def test_summary_stats(self):
        rec = LatencyRecorder("lat")
        for v in (10, 20, 30, 40):
            rec.record(v)
        assert rec.count == 4
        assert rec.mean == 25
        assert rec.minimum == 10
        assert rec.maximum == 40
        assert rec.total == 100

    def test_percentiles(self):
        rec = LatencyRecorder("lat")
        for v in range(1, 101):
            rec.record(v)
        assert rec.percentile(50) == pytest.approx(50.5)
        assert rec.percentile(0) == 1
        assert rec.percentile(100) == 100

    def test_percentile_single_sample(self):
        rec = LatencyRecorder("lat")
        rec.record(7)
        assert rec.percentile(99) == 7.0

    def test_percentile_out_of_range(self):
        rec = LatencyRecorder("lat")
        rec.record(1)
        with pytest.raises(ValueError):
            rec.percentile(101)

    def test_negative_sample_rejected(self):
        rec = LatencyRecorder("lat")
        with pytest.raises(ValueError):
            rec.record(-1)

    def test_empty_recorder_is_zero(self):
        rec = LatencyRecorder("lat")
        assert rec.mean == 0.0
        assert rec.percentile(50) == 0.0
        assert rec.stdev == 0.0

    def test_stdev(self):
        rec = LatencyRecorder("lat")
        for v in (2, 4, 4, 4, 5, 5, 7, 9):
            rec.record(v)
        assert rec.stdev == pytest.approx(2.138, abs=1e-3)

    def test_percentile_cache_sees_same_length_mutation(self):
        # Regression: the stale-sorted-cache guard used to compare lengths
        # only, so an in-place mutation that kept len(samples) constant
        # served percentiles from the stale sorted copy.
        rec = LatencyRecorder("lat")
        for v in (10, 20, 30):
            rec.record(v)
        assert rec.percentile(100) == 30  # populate the cache
        rec.samples[2] = 300
        assert rec.percentile(100) == 300
        rec.samples.sort(reverse=True)
        assert rec.percentile(0) == 10
        del rec.samples[0]
        assert rec.percentile(100) == 20

    def test_percentile_cache_sees_reassignment(self):
        rec = LatencyRecorder("lat")
        for v in (1, 2, 3):
            rec.record(v)
        assert rec.percentile(50) == 2
        rec.samples = [5, 6, 7]
        assert rec.percentile(50) == 6

    def test_snapshot_restore_roundtrip_invalidates_cache(self):
        rec = LatencyRecorder("lat")
        for v in (10, 20, 30):
            rec.record(v)
        snap = rec.snapshot()
        assert rec.percentile(100) == 30
        rec.record(999)
        assert rec.percentile(100) == 999
        rec.restore(snap)
        assert rec.count == 3
        assert rec.percentile(100) == 30
        rec.samples[0] = 70  # version tracking still live after restore
        assert rec.percentile(100) == 70


class TestRateWindow:
    def test_rate_over_window(self):
        sim = Simulator()
        rate = RateWindow("r", sim)
        rate.start_window()
        for _ in range(10):
            rate.hit()
        sim.after(SEC // 2, lambda: None)
        sim.run()
        rate.stop_window()
        assert rate.per_second() == pytest.approx(20.0)

    def test_hits_outside_window_ignored(self):
        sim = Simulator()
        rate = RateWindow("r", sim)
        rate.hit()  # before window
        rate.start_window()
        rate.hit()
        sim.after(SEC, lambda: None)
        sim.run()
        rate.stop_window()
        rate.hit()  # after window
        assert rate.events == 1

    def test_no_window_is_zero(self):
        sim = Simulator()
        rate = RateWindow("r", sim)
        assert rate.per_second() == 0.0


class TestStatsRegistry:
    def test_counters_are_memoized(self):
        sim = Simulator()
        stats = StatsRegistry(sim)
        stats.counter("a").add()
        stats.counter("a").add()
        assert stats.counter("a").value == 2

    def test_summary_includes_all_kinds(self):
        sim = Simulator()
        stats = StatsRegistry(sim)
        stats.counter("c").add(3)
        stats.latency("l").record(10)
        stats.rate("r")
        summary = stats.summary()
        assert summary["count.c"] == 3
        assert summary["lat.l.mean_ns"] == 10
        assert "rate.r.per_sec" in summary

    def test_window_control(self):
        sim = Simulator()
        stats = StatsRegistry(sim)
        rate = stats.rate("x")
        stats.start_all_windows()
        rate.hit(4)
        sim.after(SEC, lambda: None)
        sim.run()
        stats.stop_all_windows()
        assert rate.per_second() == pytest.approx(4.0)


def test_weighted_mean():
    assert weighted_mean([(10, 1), (20, 3)]) == pytest.approx(17.5)
    assert weighted_mean([]) == 0.0


class TestQuantileRecorder:
    def test_small_values_exact(self):
        from repro.sim.stats import QuantileRecorder

        rec = QuantileRecorder("q")
        for v in range(32):  # unit bins below 2**SUB_BITS are exact
            rec.record(v)
        assert rec.count == 32
        assert rec.minimum == 0
        assert rec.maximum == 31
        assert rec.percentile(50) == 15.0  # nearest rank: 16th smallest of 0..31
        assert rec.percentile(100) == 31.0

    def test_summary_stats_exact(self):
        from repro.sim.stats import QuantileRecorder

        rec = QuantileRecorder("q")
        for v in (100, 200, 3000, 40000):
            rec.record(v)
        # count/total/mean/min/max are tracked exactly; only the
        # percentile positions are binned.
        assert rec.count == 4
        assert rec.total == 43300
        assert rec.mean == pytest.approx(10825.0)
        assert rec.minimum == 100
        assert rec.maximum == 40000

    def test_percentile_clamped_to_extremes(self):
        from repro.sim.stats import QuantileRecorder

        rec = QuantileRecorder("q")
        rec.record(1_000_003)
        assert rec.percentile(0) == 1_000_003.0
        assert rec.percentile(100) == 1_000_003.0

    def test_empty_is_zero(self):
        from repro.sim.stats import QuantileRecorder

        rec = QuantileRecorder("q")
        assert rec.percentile(99) == 0.0
        assert rec.mean == 0.0

    def test_negative_sample_rejected(self):
        from repro.sim.stats import QuantileRecorder

        rec = QuantileRecorder("q")
        with pytest.raises(ValueError):
            rec.record(-1)

    def test_percentile_out_of_range(self):
        from repro.sim.stats import QuantileRecorder

        rec = QuantileRecorder("q")
        rec.record(1)
        with pytest.raises(ValueError):
            rec.percentile(101)

    def test_bin_memory_is_bounded(self):
        from repro.sim.stats import QuantileRecorder

        rec = QuantileRecorder("q")
        for v in range(1, 200_000, 7):
            rec.record(v)
        # log-spaced bins: ~2**SUB_BITS per power of two, not one per sample.
        assert len(rec._bins) < 64 * 20

    def test_snapshot_restore_roundtrip(self):
        from repro.sim.stats import QuantileRecorder

        rec = QuantileRecorder("q")
        for v in (5, 50, 500, 5000):
            rec.record(v)
        snap = rec.snapshot()
        p99 = rec.percentile(99)
        rec.record(1_000_000)
        rec.restore(snap)
        assert rec.count == 4
        assert rec.percentile(99) == p99

    def test_restore_skips_on_equal_version(self):
        from repro.sim.stats import QuantileRecorder

        rec = QuantileRecorder("q")
        rec.record(77)
        snap = rec.snapshot()
        # Untouched since the snapshot: restore must be a no-op (the
        # version-mint contract -- equal version implies identical state).
        bins_before = rec._bins
        rec.restore(snap)
        assert rec._bins is bins_before


class TestQuantileAccuracyProperty:
    """The recorder's documented error bound, property-tested against an
    exact nearest-rank percentile."""

    @given(
        values=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=300),
        pct=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_within_half_bin_of_exact(self, values, pct):
        import math

        from repro.sim.stats import QuantileRecorder

        rec = QuantileRecorder("q")
        for v in values:
            rec.record(v)
        rank = max(1, math.ceil((pct / 100.0) * len(values)))
        exact = sorted(values)[rank - 1]
        estimate = rec.percentile(pct)
        # Relative half-bin error: 2**-(SUB_BITS+1) of the exact value
        # (exact for values below 2**SUB_BITS, which unit bins hold).
        tolerance = exact * 2.0 ** -(QuantileRecorder.SUB_BITS + 1)
        assert abs(estimate - exact) <= tolerance


class TestWindowGating:
    def _gated_registry(self):
        sim = Simulator()
        return sim, StatsRegistry(sim, gate_latencies=True)

    def test_start_window_discards_warmup_samples(self):
        _sim, stats = self._gated_registry()
        rec = stats.latency("req")
        qrec = stats.quantile("req.q")
        rec.record(999_999)  # warmup pollution
        qrec.record(999_999)
        stats.start_all_windows()
        rec.record(10)
        qrec.record(10)
        assert rec.count == 1 and rec.maximum == 10
        assert qrec.count == 1 and qrec.maximum == 10

    def test_stop_window_drops_later_samples(self):
        _sim, stats = self._gated_registry()
        rec = stats.latency("req")
        qrec = stats.quantile("req.q")
        stats.start_all_windows()
        rec.record(10)
        qrec.record(10)
        stats.stop_all_windows()
        rec.record(999)
        qrec.record(999)
        assert rec.count == 1
        assert qrec.count == 1

    def test_recorder_created_mid_window_joins_it(self):
        _sim, stats = self._gated_registry()
        stats.start_all_windows()
        rec = stats.latency("late")
        qrec = stats.quantile("late.q")
        rec.record(5)
        qrec.record(5)
        stats.stop_all_windows()
        rec.record(6)
        qrec.record(6)
        assert rec.count == 1
        assert qrec.count == 1

    def test_ungated_recorder_ignores_windows(self):
        sim = Simulator()
        stats = StatsRegistry(sim, gate_latencies=False)
        rec = stats.latency("req")
        rec.record(1)
        stats.start_all_windows()
        rec.record(2)
        stats.stop_all_windows()
        rec.record(3)
        # Historical behaviour: every sample from t=0 is kept.
        assert rec.count == 3

    def test_recorder_without_any_window_records_freely(self):
        # Workloads that never call start_all_windows must keep working
        # even with gating on (the FREE state).
        sim = Simulator()
        stats = StatsRegistry(sim, gate_latencies=True)
        rec = stats.latency("free")
        rec.record(42)
        assert rec.count == 1

    def test_module_default_controls_new_registries(self):
        from repro.sim.stats import latency_gating_enabled, set_latency_gating

        sim = Simulator()
        assert latency_gating_enabled()
        try:
            set_latency_gating(False)
            assert StatsRegistry(sim).gate_latencies is False
            set_latency_gating(True)
            assert StatsRegistry(sim).gate_latencies is True
        finally:
            set_latency_gating(True)

    def test_gated_window_state_survives_snapshot_restore(self):
        _sim, stats = self._gated_registry()
        rec = stats.latency("req")
        qrec = stats.quantile("req.q")
        stats.start_all_windows()
        rec.record(10)
        qrec.record(10)
        snap = (rec.snapshot(), qrec.snapshot())
        stats.stop_all_windows()
        rec.restore(snap[0])
        qrec.restore(snap[1])
        # Restored into the open-window state: recording works again.
        rec.record(11)
        qrec.record(11)
        assert rec.count == 2
        assert qrec.count == 2
