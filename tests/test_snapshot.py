"""Replay-vs-restore differential: snapshots must be invisible.

The snapshot/fork machinery (``repro.snapshot``) is a pure optimization --
warm-boot pools for the fuzzer and O(1) backtracking for the model
checker. ``use_snapshots=False`` is the escape hatch that turns all of it
off, and these tests are the gate that keeps the two paths byte-identical:
same result tables, same end-state snapshots, same canonical state sets.
"""

import pytest

from repro.verify import FuzzConfig, run_fuzz
from repro.verify.mc import McConfig, McScope, run_mc


def _render_without_warm_boot_accounting(report) -> str:
    # The "warm boots: N cold, M restored" line is the one legitimate
    # difference between the legs: it reports how the result was produced,
    # not what it is.
    return "\n".join(
        line
        for line in report.render().splitlines()
        if not line.startswith("warm boots:")
    )


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_fuzz_differential_snapshots_vs_cold_boot(seed):
    """One fuzz campaign per leg: warm-boot restores on, then fully off.

    Everything observable -- per-mechanism end-state snapshots, stats
    summaries, violations, differential mismatches, the rendered table --
    must be byte-identical."""

    def leg(use_snapshots: bool):
        return run_fuzz(
            FuzzConfig(
                seed=seed,
                n_ops=40,
                shrink=False,
                use_snapshots=use_snapshots,
            )
        )

    warm = leg(True)
    cold = leg(False)
    assert warm.ok and cold.ok
    # The cold leg must genuinely not touch the pool.
    assert cold.warm_boots == 0 and cold.warm_restores == 0
    assert warm.warm_boots > 0
    assert _render_without_warm_boot_accounting(
        warm
    ) == _render_without_warm_boot_accounting(cold)
    assert set(warm.results) == set(cold.results)
    for name, warm_res in warm.results.items():
        cold_res = cold.results[name]
        assert warm_res.snapshot == cold_res.snapshot, name
        assert warm_res.stats_summary == cold_res.stats_summary, name
        assert [str(v) for v in warm_res.violations] == [
            str(v) for v in cold_res.violations
        ], name
        assert warm_res.errors == cold_res.errors, name
        assert warm_res.ops_executed == cold_res.ops_executed, name
        assert warm_res.sim_time_ns == cold_res.sim_time_ns, name
    assert warm.mismatches == cold.mismatches


def _explore(use_snapshots: bool):
    report = run_mc(
        McConfig(
            scope=McScope(cores=3, pages=2, ops=5),
            differential=False,
            collect_hashes=True,
            stop_on_first=False,
            use_snapshots=use_snapshots,
        )
    )
    hashes = set()
    nodes = 0
    restores = 0
    replays = 0
    for cell in report.cells:
        hashes |= set(cell.state_hashes)
        nodes += cell.nodes
        restores += cell.restores
        replays += cell.replays
    return report.verdict, nodes, hashes, restores, replays


def test_mc_snapshot_explorer_reduction_soundness():
    """The snapshot explorer must visit exactly the canonical state set
    the replay explorer visits at 3c/2p/5ops -- DPOR pruning decisions
    (visited-set, sleep sets, stutter detection) all key off state hashes,
    so a single divergent hash would silently change the reduction."""
    snap_verdict, snap_nodes, snap_hashes, restores, replays = _explore(True)
    replay_verdict, replay_nodes, replay_hashes, _, cold_replays = _explore(False)
    assert snap_verdict == "ok" and replay_verdict == "ok"
    assert snap_nodes == replay_nodes
    assert snap_hashes == replay_hashes
    # The legs must actually be different mechanisms: the snapshot leg
    # backtracks via restore() only, the replay leg via prefix replay only.
    assert restores > 0 and replays == 0
    assert cold_replays > 0
