"""Unit tests for the TLB model."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.hw.tlb import HUGE_SPAN, NO_PCID, Tlb, TlbEntry, entry_pfn

SETTINGS = settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def fill(tlb, vpn, pcid=1, pfn=None):
    tlb.fill(pcid, vpn, TlbEntry(pfn=pfn if pfn is not None else vpn + 1000))


class TestLookupFill:
    def test_miss_then_hit(self):
        tlb = Tlb(capacity=4)
        assert tlb.lookup(1, 0x10) is None
        fill(tlb, 0x10)
        entry = tlb.lookup(1, 0x10)
        assert entry is not None and entry_pfn(entry) == 0x10 + 1000
        assert tlb.hits == 1 and tlb.misses == 1

    def test_lru_eviction(self):
        tlb = Tlb(capacity=2)
        fill(tlb, 1)
        fill(tlb, 2)
        tlb.lookup(1, 1)  # refresh 1; 2 becomes LRU
        fill(tlb, 3)
        assert tlb.peek(1, 2) is None
        assert tlb.peek(1, 1) is not None
        assert tlb.evictions == 1

    def test_refill_updates_entry(self):
        tlb = Tlb(capacity=2)
        fill(tlb, 1, pfn=10)
        fill(tlb, 1, pfn=20)
        assert len(tlb) == 1
        assert tlb.peek(1, 1).pfn == 20

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tlb(capacity=0)

    def test_peek_does_not_count(self):
        tlb = Tlb(capacity=2)
        fill(tlb, 1)
        tlb.peek(1, 1)
        tlb.peek(1, 99)
        assert tlb.hits == 0 and tlb.misses == 0


class TestInvalidation:
    def test_invalidate_page(self):
        tlb = Tlb(capacity=4)
        fill(tlb, 5)
        assert tlb.invalidate_page(1, 5)
        assert not tlb.invalidate_page(1, 5)
        assert tlb.invalidations == 1

    def test_invalidate_range(self):
        tlb = Tlb(capacity=8)
        for vpn in range(6):
            fill(tlb, vpn)
        dropped = tlb.invalidate_range(1, 2, 5)
        assert dropped == 3
        assert tlb.peek(1, 1) is not None
        assert tlb.peek(1, 3) is None
        assert tlb.peek(1, 5) is not None

    def test_flush_all(self):
        tlb = Tlb(capacity=8)
        for vpn in range(4):
            fill(tlb, vpn)
        count = tlb.flush()
        assert count == 4
        assert len(tlb) == 0
        assert tlb.full_flushes == 1


class TestPcid:
    def test_without_pcid_all_processes_collide(self):
        tlb = Tlb(capacity=8, pcid_enabled=False)
        fill(tlb, 7, pcid=1, pfn=100)
        # Another process's fill for the same vpn overwrites.
        fill(tlb, 7, pcid=2, pfn=200)
        assert entry_pfn(tlb.lookup(1, 7)) == 200

    def test_with_pcid_entries_are_tagged(self):
        tlb = Tlb(capacity=8, pcid_enabled=True)
        fill(tlb, 7, pcid=1, pfn=100)
        fill(tlb, 7, pcid=2, pfn=200)
        assert entry_pfn(tlb.lookup(1, 7)) == 100
        assert entry_pfn(tlb.lookup(2, 7)) == 200

    def test_pcid_scoped_flush(self):
        tlb = Tlb(capacity=8, pcid_enabled=True)
        fill(tlb, 1, pcid=1)
        fill(tlb, 2, pcid=2)
        dropped = tlb.flush(pcid=1)
        assert dropped == 1
        assert tlb.peek(2, 2) is not None

    def test_pcid_scoped_range_invalidate(self):
        tlb = Tlb(capacity=8, pcid_enabled=True)
        fill(tlb, 3, pcid=1)
        fill(tlb, 3, pcid=2)
        assert tlb.invalidate_range(1, 0, 10) == 1
        assert tlb.peek(2, 3) is not None

    def test_no_pcid_flush_with_pcid_arg_flushes_all(self):
        tlb = Tlb(capacity=8, pcid_enabled=False)
        fill(tlb, 1, pcid=1)
        fill(tlb, 2, pcid=2)
        assert tlb.flush(pcid=1) == 2


_TLB_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["fill", "fill_huge", "lookup", "inv_page", "inv_range", "flush_pcid", "flush_all"]
        ),
        st.integers(min_value=1, max_value=3),  # pcid
        st.integers(min_value=0, max_value=4 * HUGE_SPAN),  # vpn / range start
        st.integers(min_value=1, max_value=2 * HUGE_SPAN),  # range width
    ),
    max_size=200,
)


class TestIndexedVsScan:
    """The per-pcid secondary index is a pure lookup accelerator: with
    ``use_index`` on or off, every operation must return the same value and
    leave the TLB in the same externally observable state -- including
    huge-page entries whose 512-page span partially overlaps a range."""

    @SETTINGS
    @given(ops=_TLB_OPS, pcid_enabled=st.booleans())
    def test_matches_scan_model(self, ops, pcid_enabled):
        tlbs = [
            Tlb(capacity=32, pcid_enabled=pcid_enabled, huge_capacity=8, use_index=use)
            for use in (True, False)
        ]
        for op, pcid, vpn, width in ops:
            results = []
            for tlb in tlbs:
                if op == "fill":
                    results.append(tlb.fill(pcid, vpn, TlbEntry(pfn=vpn + 7)))
                elif op == "fill_huge":
                    base = vpn - vpn % HUGE_SPAN
                    results.append(tlb.fill_huge(pcid, base, TlbEntry(pfn=base + 9)))
                elif op == "lookup":
                    results.append(tlb.lookup(pcid, vpn))
                elif op == "inv_page":
                    results.append(tlb.invalidate_page(pcid, vpn))
                elif op == "inv_range":
                    results.append(tlb.invalidate_range(pcid, vpn, vpn + width))
                elif op == "flush_pcid":
                    results.append(tlb.flush(pcid))
                else:
                    results.append(tlb.flush())
            assert results[0] == results[1], (op, pcid, vpn, width)
        indexed, scan = tlbs
        assert indexed.items() == scan.items()
        assert indexed.huge_items() == scan.huge_items()
        assert indexed.stats() == scan.stats()
        for pcid in (1, 2, 3):
            assert sorted(indexed.cached_vpns(pcid)) == sorted(scan.cached_vpns(pcid))

    @SETTINGS
    @given(
        base=st.integers(min_value=0, max_value=3 * HUGE_SPAN),
        start=st.integers(min_value=0, max_value=4 * HUGE_SPAN),
        width=st.integers(min_value=1, max_value=2 * HUGE_SPAN),
    )
    def test_huge_overlap_boundaries(self, base, start, width):
        # A huge entry covers [base, base + HUGE_SPAN); it must drop iff
        # that span intersects [start, start + width) -- under both paths.
        base -= base % HUGE_SPAN
        results = []
        for use in (True, False):
            tlb = Tlb(capacity=8, pcid_enabled=True, use_index=use)
            tlb.fill_huge(1, base, TlbEntry(pfn=1))
            dropped = tlb.invalidate_range(1, start, start + width)
            results.append((dropped, tlb.huge_items()))
        assert results[0] == results[1]
        overlaps = base < start + width and base + HUGE_SPAN > start
        assert results[0][0] == (1 if overlaps else 0)


class TestAccessors:
    def test_cached_vpns(self):
        tlb = Tlb(capacity=8)
        for vpn in (1, 5, 9):
            fill(tlb, vpn)
        assert sorted(tlb.cached_vpns(1)) == [1, 5, 9]

    def test_items_and_stats(self):
        tlb = Tlb(capacity=8)
        fill(tlb, 1)
        items = tlb.items()
        assert len(items) == 1
        ((pcid, vpn), entry), = items
        assert pcid == NO_PCID and vpn == 1
        stats = tlb.stats()
        assert stats["resident"] == 1
