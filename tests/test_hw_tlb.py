"""Unit tests for the TLB model."""

import pytest

from repro.hw.tlb import NO_PCID, Tlb, TlbEntry


def fill(tlb, vpn, pcid=1, pfn=None):
    tlb.fill(pcid, vpn, TlbEntry(pfn=pfn if pfn is not None else vpn + 1000))


class TestLookupFill:
    def test_miss_then_hit(self):
        tlb = Tlb(capacity=4)
        assert tlb.lookup(1, 0x10) is None
        fill(tlb, 0x10)
        entry = tlb.lookup(1, 0x10)
        assert entry is not None and entry.pfn == 0x10 + 1000
        assert tlb.hits == 1 and tlb.misses == 1

    def test_lru_eviction(self):
        tlb = Tlb(capacity=2)
        fill(tlb, 1)
        fill(tlb, 2)
        tlb.lookup(1, 1)  # refresh 1; 2 becomes LRU
        fill(tlb, 3)
        assert tlb.peek(1, 2) is None
        assert tlb.peek(1, 1) is not None
        assert tlb.evictions == 1

    def test_refill_updates_entry(self):
        tlb = Tlb(capacity=2)
        fill(tlb, 1, pfn=10)
        fill(tlb, 1, pfn=20)
        assert len(tlb) == 1
        assert tlb.peek(1, 1).pfn == 20

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tlb(capacity=0)

    def test_peek_does_not_count(self):
        tlb = Tlb(capacity=2)
        fill(tlb, 1)
        tlb.peek(1, 1)
        tlb.peek(1, 99)
        assert tlb.hits == 0 and tlb.misses == 0


class TestInvalidation:
    def test_invalidate_page(self):
        tlb = Tlb(capacity=4)
        fill(tlb, 5)
        assert tlb.invalidate_page(1, 5)
        assert not tlb.invalidate_page(1, 5)
        assert tlb.invalidations == 1

    def test_invalidate_range(self):
        tlb = Tlb(capacity=8)
        for vpn in range(6):
            fill(tlb, vpn)
        dropped = tlb.invalidate_range(1, 2, 5)
        assert dropped == 3
        assert tlb.peek(1, 1) is not None
        assert tlb.peek(1, 3) is None
        assert tlb.peek(1, 5) is not None

    def test_flush_all(self):
        tlb = Tlb(capacity=8)
        for vpn in range(4):
            fill(tlb, vpn)
        count = tlb.flush()
        assert count == 4
        assert len(tlb) == 0
        assert tlb.full_flushes == 1


class TestPcid:
    def test_without_pcid_all_processes_collide(self):
        tlb = Tlb(capacity=8, pcid_enabled=False)
        fill(tlb, 7, pcid=1, pfn=100)
        # Another process's fill for the same vpn overwrites.
        fill(tlb, 7, pcid=2, pfn=200)
        assert tlb.lookup(1, 7).pfn == 200

    def test_with_pcid_entries_are_tagged(self):
        tlb = Tlb(capacity=8, pcid_enabled=True)
        fill(tlb, 7, pcid=1, pfn=100)
        fill(tlb, 7, pcid=2, pfn=200)
        assert tlb.lookup(1, 7).pfn == 100
        assert tlb.lookup(2, 7).pfn == 200

    def test_pcid_scoped_flush(self):
        tlb = Tlb(capacity=8, pcid_enabled=True)
        fill(tlb, 1, pcid=1)
        fill(tlb, 2, pcid=2)
        dropped = tlb.flush(pcid=1)
        assert dropped == 1
        assert tlb.peek(2, 2) is not None

    def test_pcid_scoped_range_invalidate(self):
        tlb = Tlb(capacity=8, pcid_enabled=True)
        fill(tlb, 3, pcid=1)
        fill(tlb, 3, pcid=2)
        assert tlb.invalidate_range(1, 0, 10) == 1
        assert tlb.peek(2, 3) is not None

    def test_no_pcid_flush_with_pcid_arg_flushes_all(self):
        tlb = Tlb(capacity=8, pcid_enabled=False)
        fill(tlb, 1, pcid=1)
        fill(tlb, 2, pcid=2)
        assert tlb.flush(pcid=1) == 2


class TestAccessors:
    def test_cached_vpns(self):
        tlb = Tlb(capacity=8)
        for vpn in (1, 5, 9):
            fill(tlb, vpn)
        assert sorted(tlb.cached_vpns(1)) == [1, 5, 9]

    def test_items_and_stats(self):
        tlb = Tlb(capacity=8)
        fill(tlb, 1)
        items = tlb.items()
        assert len(items) == 1
        ((pcid, vpn), entry), = items
        assert pcid == NO_PCID and vpn == 1
        stats = tlb.stats()
        assert stats["resident"] == 1
