"""Paper section 4.4: the race conditions a lazy shootdown introduces.

* Reads/writes through a stale TLB entry before the sweep reach the old,
  still-pinned page (an application error, but contained); after the sweep
  they segfault.
* An AutoNUMA hint fault racing a lazy migration unmap is gated until every
  core has invalidated.
"""

import pytest

from repro import build_system
from repro.hw.tlb import entry_pfn, entry_writable
from repro.kernel.invariants import check_tlb_frame_safety
from repro.mm.addr import PAGE_SIZE
from repro.mm.fault import SegmentationFault
from repro.sim.engine import MSEC

from helpers import make_proc, run_to_completion, drain


class TestUseAfterFreeWindow:
    def _setup_unmapped_shared_page(self, system):
        kernel = system.kernel
        proc, tasks = make_proc(system)
        holder = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
            for t in tasks:
                core = kernel.machine.core(t.home_core_id)
                yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
            yield from kernel.syscalls.munmap(t0, c0, vrange)
            holder["vrange"] = vrange

        run_to_completion(system, body())
        return proc, tasks, holder["vrange"]

    @pytest.mark.parametrize("write", [False, True])
    def test_access_before_sweep_hits_stale_but_pinned_page(self, write):
        """Reads/writes before the tick proceed against the old page; the
        frame is still pinned so no other process can be corrupted."""
        system = build_system("latr", cores=4)
        proc, tasks, vrange = self._setup_unmapped_shared_page(system)
        kernel = system.kernel
        remote_core = kernel.machine.core(1)
        # TLB still holds the entry: the access "succeeds" architecturally.
        entry = remote_core.tlb.lookup(proc.mm.pcid, vrange.vpn_start)
        assert entry is not None
        if write:
            assert entry_writable(entry)
        # The frame it names is still allocated (pinned by the lazy list).
        assert kernel.frames.is_allocated(entry_pfn(entry))
        assert entry_pfn(entry) in proc.mm.lazy_frames
        assert check_tlb_frame_safety(kernel) == []

    @pytest.mark.parametrize("write", [False, True])
    def test_access_after_sweep_segfaults(self, write):
        system = build_system("latr", cores=4)
        proc, tasks, vrange = self._setup_unmapped_shared_page(system)
        kernel = system.kernel
        drain(system, ms=2)  # every core swept

        def late_access():
            t1, c1 = tasks[1], kernel.machine.core(1)
            yield from kernel.syscalls.access(t1, c1, vrange.start, write=write)

        system.sim.spawn(late_access())
        with pytest.raises(SegmentationFault):
            system.sim.run(until=system.sim.now + 5 * MSEC)

    def test_under_linux_access_faults_immediately(self):
        """Baseline contrast: synchronous shootdown leaves no window."""
        system = build_system("linux", cores=4)
        proc, tasks, vrange = self._setup_unmapped_shared_page(system)
        kernel = system.kernel

        def late_access():
            t1, c1 = tasks[1], kernel.machine.core(1)
            yield from kernel.syscalls.access(t1, c1, vrange.start)

        system.sim.spawn(late_access())
        with pytest.raises(SegmentationFault):
            system.sim.run(until=system.sim.now + 5 * MSEC)

    def test_stale_window_never_exposes_recycled_memory(self):
        """Even while stale entries exist, the frames they name are never
        re-allocated -- the paper's core isolation guarantee."""
        system = build_system("latr", cores=4)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def churn():
            t0, c0 = tasks[0], kernel.machine.core(0)
            for _ in range(20):
                vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
                for t in tasks:
                    core = kernel.machine.core(t.home_core_id)
                    yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
                yield from kernel.syscalls.munmap(t0, c0, vrange)
                violations = check_tlb_frame_safety(kernel)
                assert violations == []

        run_to_completion(system, churn())
        drain(system, ms=5)
        assert check_tlb_frame_safety(kernel) == []


class TestMigrationGating:
    def test_hint_fault_waits_for_all_invalidations(self):
        """Paper 4.4: the fault may only migrate after the LATR state's
        bitmask is empty."""
        system = build_system("latr", cores=4)
        kernel = system.kernel
        from repro.kernel.autonuma import AutoNuma

        AutoNuma.install(kernel)
        proc, tasks = make_proc(system)
        trace = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)

            # Post a lazy migration unmap by hand.
            mm = proc.mm

            def apply_change():
                pte = mm.page_table.walk(vrange.vpn_start)
                if pte is not None and pte.present:
                    mm.page_table.update_pte(vrange.vpn_start, pte.make_numa_hint())

            yield mm.mmap_sem.acquire()
            done = yield from kernel.coherence.migration_unmap(
                c0, mm, vrange, apply_change
            )
            mm.mmap_sem.release()
            trace["posted_at"] = system.sim.now
            gate = kernel.coherence.migration_gate(mm, vrange.vpn_start)
            assert gate is not None and not gate.triggered
            yield gate
            trace["gate_open_at"] = system.sim.now

        run_to_completion(system, body(), timeout_ms=20)
        # The gate opened only after sweeps, i.e. strictly later than post,
        # and within the tick bound.
        assert trace["gate_open_at"] > trace["posted_at"]
        assert trace["gate_open_at"] - trace["posted_at"] <= 1.2 * MSEC

    def test_first_sweeper_applies_pte_change(self):
        system = build_system("latr", cores=2)
        kernel = system.kernel
        proc, tasks = make_proc(system)
        applied = []

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
            mm = proc.mm

            def apply_change():
                applied.append(system.sim.now)

            yield mm.mmap_sem.acquire()
            yield from kernel.coherence.migration_unmap(c0, mm, vrange, apply_change)
            mm.mmap_sem.release()

        run_to_completion(system, body())
        assert applied == []  # deferred: not applied at post time
        drain(system, ms=2)
        assert len(applied) == 1  # exactly one sweeper applied it
