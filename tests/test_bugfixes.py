"""Regression tests for the sim-engine, LATR-fallback, and rendering fixes
that shipped with the coherence fuzzer."""

from __future__ import annotations

import pytest
from helpers import make_proc, run_to_completion

from repro import build_system
from repro.experiments.runner import ExperimentResult
from repro.mm.addr import PAGE_SIZE, VirtRange
from repro.sim.engine import AllOf, Signal, SimulationError, Simulator, Timeout


class TestRunClock:
    """Simulator.run(until=..., max_events=...) clock handling."""

    def test_max_events_break_does_not_jump_clock_past_pending_events(self):
        sim = Simulator()
        fired = []
        sim.after(10, fired.append, "a")
        sim.after(100, fired.append, "b")
        executed = sim.run(until=500, max_events=1)
        assert executed == 1
        assert fired == ["a"]
        # The bug: the clock jumped to 500 here, so the pending event at
        # t=100 would later run with time moving backwards.
        assert sim.now == 10
        sim.run()
        assert fired == ["a", "b"]
        assert sim.now == 100

    def test_until_advances_clock_when_drained(self):
        sim = Simulator()
        sim.after(10, lambda: None)
        sim.run(until=50)
        assert sim.now == 50

    def test_until_in_past_does_not_rewind(self):
        sim = Simulator()
        sim.after(10, lambda: None)
        sim.run(until=50)
        assert sim.now == 50
        sim.run(until=20)
        assert sim.now == 50

    def test_cancelled_head_does_not_pin_clock(self):
        sim = Simulator()
        handle = sim.after(10, lambda: None)
        handle.cancel()
        sim.run(until=50)
        assert sim.now == 50


class TestNestedAllOf:
    """Process._wait_all must accept AllOf (and Timeout) children."""

    def test_nested_allof_gathers_recursively(self):
        sim = Simulator()
        s1, s2, s3 = Signal(sim), Signal(sim), Signal(sim)
        got = []

        def body():
            value = yield AllOf([s1, AllOf([s2, s3])])
            got.append(value)

        sim.spawn(body())
        sim.after(1, s1.succeed, "a")
        sim.after(2, s2.succeed, "b")
        sim.after(3, s3.succeed, "c")
        sim.run()
        assert got == [["a", ["b", "c"]]]

    def test_timeout_children_and_empty_allof(self):
        sim = Simulator()
        done = []

        def body():
            yield AllOf([])
            yield AllOf([Timeout(5), Timeout(3)])
            done.append(sim.now)

        sim.spawn(body())
        sim.run()
        assert done == [5]

    def test_unwaitable_child_raises(self):
        sim = Simulator()

        def body():
            yield AllOf([object()])

        sim.spawn(body())
        with pytest.raises(SimulationError, match="is not waitable"):
            sim.run()


class TestLatrMigrationFallback:
    """Queue-full migration unmaps fall back to a synchronous IPI and must
    resolve the state's own done signal plus record shootdown stats."""

    def _fill_queue_then_migrate(self):
        system = build_system("latr", cores=2, queue_depth=2)
        kernel = system.kernel
        proc, tasks = make_proc(system)
        sc = kernel.syscalls
        out = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            t1, c1 = tasks[1], kernel.machine.core(1)
            # Two munmap frees fill core 0's depth-2 state queue.
            for _ in range(2):
                vr = yield from sc.mmap(t0, c0, PAGE_SIZE)
                yield from sc.touch_pages(t0, c0, vr, write=True)
                yield from sc.touch_pages(t1, c1, vr)
                yield from sc.munmap(t0, c0, vr)
            # A migration-class unmap now cannot post: fallback IPI path.
            vr = yield from sc.mmap(t0, c0, PAGE_SIZE)
            yield from sc.touch_pages(t0, c0, vr, write=True)
            yield from sc.touch_pages(t1, c1, vr)

            def apply_change(mm=proc.mm, vr=vr):
                for vpn in vr.vpns():
                    pte = mm.page_table.walk(vpn)
                    if pte is not None and pte.present:
                        mm.page_table.update_pte(vpn, pte.make_numa_hint())

            done = yield from kernel.coherence.migration_unmap(
                c0, proc.mm, vr, apply_change
            )
            out["done"] = done
            out["vrange"] = vr

        run_to_completion(system, body())
        return system, proc, out

    def test_fallback_resolves_state_done_signal(self):
        system, proc, out = self._fill_queue_then_migrate()
        # The returned signal is the state's own completion signal and it
        # already fired (the fallback IPI finished synchronously) -- a
        # migration_gate on the same range must therefore not block.
        assert out["done"].triggered
        vpn = out["vrange"].vpn_start
        assert system.kernel.coherence.migration_gate(proc.mm, vpn) is None

    def test_fallback_applies_pte_change_and_counts_shootdown(self):
        system, proc, out = self._fill_queue_then_migrate()
        pte = proc.mm.page_table.walk(out["vrange"].vpn_start)
        assert pte is not None and pte.numa_hint
        assert system.stats.counter("latr.fallback_ipi").value >= 1
        assert system.stats.counter("shootdown.initiated").value >= 1
        assert system.stats.latency("shootdown.migration").count >= 1


class TestRaggedRender:
    def test_render_pads_short_and_truncates_long_rows(self):
        result = ExperimentResult(
            exp_id="x",
            title="ragged",
            headers=("a", "b", "c"),
            rows=[(1,), (1, 2, 3, 4), ("x", "y", "z")],
        )
        text = result.render()  # raised IndexError before the fix
        lines = text.splitlines()
        assert len(lines) == 6
        # Every data row renders exactly as many cells as there are headers.
        for line in lines[3:]:
            assert line.count("|") == 2
