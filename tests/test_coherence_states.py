"""Unit tests for LATR state records and the per-core cyclic queue."""

import pytest

from repro.coherence.states import (
    DEFAULT_QUEUE_DEPTH,
    STATE_BYTES,
    LatrFlag,
    LatrState,
    LatrStateQueue,
)
from repro.mm.addr import VirtRange
from repro.mm.mmstruct import MmStruct
from repro.sim.engine import Signal, Simulator


def make_state(sim=None, cpus=(1, 2), flag=LatrFlag.FREE, reclaimed_ok=True):
    sim = sim or Simulator()
    mm = MmStruct(sim)
    state = LatrState(
        vrange=VirtRange.from_pages(10, 1),
        mm=mm,
        cpu_bitmask=set(cpus),
        flag=flag,
        owner_core=0,
        posted_at=0,
        done=Signal(sim),
    )
    return state


class TestLatrState:
    def test_paper_constants(self):
        assert DEFAULT_QUEUE_DEPTH == 64
        assert STATE_BYTES == 68

    def test_clear_cpu_progression(self):
        state = make_state(cpus=(1, 2))
        assert state.clear_cpu(1, now=5) is False
        assert state.active
        assert state.clear_cpu(2, now=9) is True
        assert not state.active
        assert state.completed_at == 9
        assert state.done.triggered

    def test_clear_unknown_cpu_harmless(self):
        state = make_state(cpus=(1,))
        state.clear_cpu(7, now=1)
        assert state.active

    def test_done_fires_once(self):
        state = make_state(cpus=(1,))
        state.clear_cpu(1, now=1)
        # A second clear of an empty mask must not re-trigger.
        state.clear_cpu(1, now=2)
        assert state.completed_at == 1


class TestLatrStateQueue:
    def test_post_and_iterate(self):
        q = LatrStateQueue(core_id=0, depth=4)
        s = make_state()
        assert q.post(s)
        assert list(q.active_states()) == [s]
        assert q.posts == 1

    def test_full_queue_rejects(self):
        """Paper section 8: full queue -> fall back to IPIs."""
        q = LatrStateQueue(core_id=0, depth=2)
        assert q.post(make_state())
        assert q.post(make_state())
        assert not q.post(make_state())
        assert q.full_rejections == 1

    def test_inactive_but_unreclaimed_slot_not_reusable(self):
        """A FREE state must survive until the reclaim daemon ran."""
        q = LatrStateQueue(core_id=0, depth=1)
        s = make_state(cpus=(1,))
        assert q.post(s)
        s.clear_cpu(1, now=1)
        assert not s.active
        assert not q.post(make_state())  # still pinned: not reclaimed
        s.reclaimed = True
        assert q.post(make_state())

    def test_cyclic_reuse(self):
        q = LatrStateQueue(core_id=0, depth=2)
        states = [make_state(cpus=(1,)) for _ in range(4)]
        for i, s in enumerate(states):
            s.reclaimed = True  # pretend reclamation is instant
            s.active = False
        for s in states:
            assert q.post(s)
        assert q.posts == 4

    def test_occupancy(self):
        q = LatrStateQueue(core_id=0, depth=4)
        s1, s2 = make_state(), make_state(cpus=(1,))
        q.post(s1)
        q.post(s2)
        assert q.occupancy() == 2
        s2.clear_cpu(1, now=1)
        s2.reclaimed = True
        assert q.occupancy() == 1

    def test_footprint_matches_paper(self):
        q = LatrStateQueue(core_id=0)
        assert q.footprint_bytes() == 64 * 68

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            LatrStateQueue(0, depth=0)


from repro.coherence.states import SoaLatrQueue, SoaLatrState


def make_state_of(state_cls, sim=None, cpus=(1, 2), flag=LatrFlag.FREE):
    sim = sim or Simulator()
    mm = MmStruct(sim)
    return state_cls(
        vrange=VirtRange.from_pages(10, 1),
        mm=mm,
        cpu_bitmask=set(cpus),
        flag=flag,
        owner_core=0,
        posted_at=0,
        done=Signal(sim),
    )


@pytest.mark.parametrize(
    "queue_cls,state_cls",
    [(LatrStateQueue, LatrState), (SoaLatrQueue, SoaLatrState)],
    ids=["object", "soa"],
)
class TestQueueDepthBoundary:
    """The cyclic ring at its depth limit, for both representations."""

    def test_overflow_rejected_at_depth(self, queue_cls, state_cls):
        q = queue_cls(core_id=0, depth=3)
        sim = Simulator()
        for _ in range(3):
            assert q.post(make_state_of(state_cls, sim)) is True
        assert q.occupancy() == 3
        assert q.active_count == 3
        overflow = make_state_of(state_cls, sim)
        assert q.post(overflow) is False
        assert q.full_rejections == 1
        assert q.posts == 3
        # The rejected state never joined the ring.
        assert overflow not in list(q.all_states())

    def test_slot_reuse_after_deactivate_and_reclaim(self, queue_cls, state_cls):
        q = queue_cls(core_id=0, depth=2)
        sim = Simulator()
        first = make_state_of(state_cls, sim, cpus=(1,))
        second = make_state_of(state_cls, sim, cpus=(1,))
        q.post(first)
        q.post(second)
        # Inactive alone is not reusable (FREE records must outlive the
        # reclamation daemon); the cursor slot still blocks the post.
        first.clear_cpu(1, now=5)
        assert q.post(make_state_of(state_cls, sim)) is False
        first.reclaimed = True
        replacement = make_state_of(state_cls, sim)
        assert q.post(replacement) is True
        assert replacement.slot_idx == first.slot_idx
        # The recycled state keeps its exact final values off-ring.
        assert not first.active
        assert first.reclaimed
        assert first.completed_at == 5
        assert sorted(first.cpu_bitmask) == []

    def test_occupancy_counts_unreclaimed_inactive(self, queue_cls, state_cls):
        q = queue_cls(core_id=0, depth=4)
        sim = Simulator()
        s1 = make_state_of(state_cls, sim, cpus=(1,))
        s2 = make_state_of(state_cls, sim, cpus=(2,))
        q.post(s1)
        q.post(s2)
        assert q.occupancy() == 2
        s1.clear_cpu(1, now=1)
        assert q.active_count == 1
        # Still occupied: inactive but not yet reclaimed.
        assert q.occupancy() == 2
        s1.reclaimed = True
        assert q.occupancy() == 1

    def test_footprint_independent_of_occupancy(self, queue_cls, state_cls):
        q = queue_cls(core_id=0, depth=8)
        assert q.footprint_bytes() == 8 * STATE_BYTES
        q.post(make_state_of(state_cls))
        assert q.footprint_bytes() == 8 * STATE_BYTES
