"""Shared helpers for the test suite (importable as `helpers`)."""

from __future__ import annotations

from repro import build_system
from repro.sim.engine import MSEC, SEC


def make_proc(system, n_threads=None, name="proc"):
    """Create a process with one thread pinned per core (or n_threads)."""
    kernel = system.kernel
    n = n_threads if n_threads is not None else kernel.machine.n_cores
    proc = kernel.create_process(name)
    tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(n)]
    return proc, tasks


def run_to_completion(system, gen, timeout_ms=2_000):
    """Spawn ``gen`` and run the sim until it completes; returns its value."""
    proc = system.sim.spawn(gen)
    deadline = system.sim.now + timeout_ms * MSEC
    while proc.alive and system.sim.now < deadline:
        if not system.sim.step():
            break
    assert not proc.alive, "process did not finish in time"
    return proc.value


def drain(system, ms=5):
    """Advance the simulation by ``ms`` simulated milliseconds."""
    system.sim.run(until=system.sim.now + ms * MSEC)


#: Mutated by :func:`marker_cell`; proves where a cell executed (inline
#: cells change it in this process, sharded ones only in their worker).
MARKER_CALLS = []


def marker_cell(tag: str) -> str:
    MARKER_CALLS.append(tag)
    return tag


def crash_cell(message: str = "boom"):
    """A run-cell entry point that always raises (crash-surfacing tests)."""
    raise ValueError(message)
