"""Tests for the timer-wheel simulator core and the periodic-event fast path.

The wheel is a pure wall-clock optimisation: with ``use_timer_wheel`` on or
off, the engine must execute the exact same events in the exact same
``(time, seq)`` order, and every modelled result -- stats tables, mechanism
snapshots, simulated time, per-core TLB counters -- must be bit-identical.
The differential tests below replay full fuzzer plans and a pure
engine-churn microbench under both configurations and compare everything.
"""

from __future__ import annotations

import pytest
from helpers import drain, make_proc, run_to_completion

from repro import build_system
from repro.bench import run_engine_stress
from repro.mm.addr import PAGE_SIZE
from repro.sim.engine import (
    WHEEL_SLOT_NS,
    WHEEL_SLOTS,
    WHEEL_SPAN_NS,
    Simulator,
    Timeout,
)
from repro.verify.fuzzer import run_one
from repro.verify.plan import generate_plan


class TestWheelHeapDifferential:
    """Wheel on vs off: identical modelled behaviour, end to end."""

    @pytest.mark.parametrize("seed", [3, 11, 27])
    def test_fuzz_plans_identical(self, seed):
        plan = generate_plan(seed, 40, n_cores=4, n_procs=2)
        wheel = run_one("latr", plan, use_timer_wheel=True, use_tlb_index=True)
        heap = run_one("latr", plan, use_timer_wheel=False, use_tlb_index=False)
        assert wheel.clean, (wheel.violations, wheel.errors)
        assert heap.clean, (heap.violations, heap.errors)
        assert wheel.stats_summary == heap.stats_summary
        assert wheel.snapshot == heap.snapshot
        assert wheel.sim_time_ns == heap.sim_time_ns

    def test_engine_stress_order_identical(self):
        _sim, wheel_order = run_engine_stress(
            20_000, use_timer_wheel=True, record_order=True
        )
        _sim, heap_order = run_engine_stress(
            20_000, use_timer_wheel=False, record_order=True
        )
        assert wheel_order == heap_order
        assert len(wheel_order) == 20_000

    def test_tlb_stats_identical(self):
        def run(flags):
            system = build_system(
                "latr", cores=4, use_timer_wheel=flags, use_tlb_index=flags
            )
            kernel = system.kernel
            _proc, tasks = make_proc(system)
            sc = kernel.syscalls

            def body():
                t0, c0 = tasks[0], kernel.machine.core(0)
                t1, c1 = tasks[1], kernel.machine.core(1)
                for _ in range(4):
                    vr = yield from sc.mmap(t0, c0, 8 * PAGE_SIZE)
                    yield from sc.touch_pages(t0, c0, vr, write=True)
                    yield from sc.touch_pages(t1, c1, vr)
                    yield from sc.munmap(t0, c0, vr)

            run_to_completion(system, body())
            drain(system, ms=8)
            return (
                kernel.stats.summary(),
                [core.tlb.stats() for core in kernel.machine.cores],
                system.sim.now,
            )

        assert run(True) == run(False)


class TestEvery:
    """sim.every(): one reusable handle, classic daemon cadence."""

    def test_callback_fires_every_interval(self):
        sim = Simulator()
        fired = []
        sim.every(100, lambda: fired.append(sim.now))
        sim.run(until=350)
        assert fired == [100, 200, 300]

    def test_start_offset(self):
        sim = Simulator()
        fired = []
        sim.every(100, lambda: fired.append(sim.now), start=5)
        sim.run(until=300)
        assert fired == [5, 105, 205]
        sim2 = Simulator()
        fired2 = []
        sim2.every(100, lambda: fired2.append(sim2.now), start=0)
        sim2.run(until=250)
        assert fired2 == [0, 100, 200]

    def test_args_are_passed_each_firing(self):
        sim = Simulator()
        seen = []
        sim.every(10, lambda a, b: seen.append((a, b)), "x", 7)
        sim.run(until=25)
        assert seen == [("x", 7), ("x", 7)]

    def test_cancel_stops_the_series(self):
        sim = Simulator()
        fired = []
        handle = sim.every(100, lambda: fired.append(sim.now))
        sim.run(until=250)
        handle.cancel()
        sim.run(until=1000)
        assert fired == [100, 200]
        assert sim.pending() == 0

    def test_cancel_from_inside_the_callback(self):
        sim = Simulator()
        fired = []
        def cb():
            fired.append(sim.now)
            if len(fired) == 3:
                handle.cancel()
        handle = sim.every(50, cb)
        sim.run()
        assert fired == [50, 100, 150]

    def test_generator_body_rearms_after_completion(self):
        # The old daemons did `while True: yield Timeout(p); <body>`:
        # the next period starts when the body *finishes*. The generator
        # flavour of every() must keep that cadence.
        sim = Simulator()
        windows = []

        def body():
            started = sim.now
            yield Timeout(30)
            windows.append((started, sim.now))

        sim.every(100, body)
        sim.run(until=400)
        assert windows == [(100, 130), (230, 260), (360, 390)]

    def test_periodic_reuses_one_handle(self):
        sim = Simulator()
        handle = sim.every(100, lambda: None)
        for expected in (100, 200, 300):
            sim.run(max_events=1)
            assert sim.now == expected
            assert sim.pending() == 1  # the same handle, re-armed

    def test_rejects_bad_intervals(self):
        from repro.sim.engine import SimulationError

        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.every(0, lambda: None)
        with pytest.raises(SimulationError):
            sim.every(100, lambda: None, start=-1)


class TestCancellation:
    """cancel() must not leak bucket slots, and pending() stays O(1)-exact."""

    def test_pending_counts_exactly(self):
        sim = Simulator()
        handles = [sim.after(1000 + 7 * i, lambda: None) for i in range(100)]
        assert sim.pending() == 100
        for h in handles[::2]:
            h.cancel()
        assert sim.pending() == 50
        executed = sim.run()
        assert executed == 50
        assert sim.pending() == 0

    def test_double_cancel_is_idempotent(self):
        sim = Simulator()
        h = sim.after(500, lambda: None)
        h.cancel()
        h.cancel()
        assert sim.pending() == 0

    def test_cancelled_events_never_fire(self):
        sim = Simulator()
        fired = []
        keep = [sim.after(10_000 + i, fired.append, i) for i in range(0, 20, 2)]
        drop = [sim.after(10_001 + i, fired.append, -i) for i in range(0, 20, 2)]
        for h in drop:
            h.cancel()
        sim.run()
        assert fired == list(range(0, 20, 2))
        assert all(h.cancelled for h in drop) and keep

    def test_bucket_compaction_reclaims_slots(self):
        sim = Simulator()
        # 20 events into one future wheel slot (same 4096 ns bucket, well
        # past the active slot so they are appended, not heap-pushed).
        base = 10 * WHEEL_SLOT_NS
        handles = [sim.after(base + i, lambda: None) for i in range(20)]
        bucket_idx = handles[0]._bucket
        assert bucket_idx >= 0
        assert all(h._bucket == bucket_idx for h in handles)
        assert len(sim._buckets[bucket_idx]) == 20
        # Cancelling up to half leaves the dead handles in place...
        for h in handles[:10]:
            h.cancel()
        assert len(sim._buckets[bucket_idx]) == 20
        # ...one more tips the bucket over 50% dead: it compacts.
        handles[10].cancel()
        assert len(sim._buckets[bucket_idx]) == 9
        assert all(not h.cancelled for h in sim._buckets[bucket_idx])
        assert sim.pending() == 9
        assert sim.run() == 9

    def test_small_buckets_skip_compaction(self):
        sim = Simulator()
        base = 10 * WHEEL_SLOT_NS
        handles = [sim.after(base + i, lambda: None) for i in range(4)]
        bucket_idx = handles[0]._bucket
        for h in handles[:3]:
            h.cancel()
        # Below the compaction minimum: lazily dropped at pop time instead.
        assert len(sim._buckets[bucket_idx]) == 4
        assert sim.pending() == 1
        assert sim.run() == 1


class TestWheelEdges:
    """Placement edges: active slot, horizon, overflow, cursor jumps."""

    def test_overflow_migrates_into_wheel_in_order(self):
        sim = Simulator()
        fired = []
        # One event per region: active slot, mid-wheel, past the horizon.
        sim.after(WHEEL_SPAN_NS + 5_000, fired.append, "far")
        sim.after(50, fired.append, "near")
        sim.after(WHEEL_SLOT_NS * 3, fired.append, "mid")
        sim.after(2 * WHEEL_SPAN_NS + 1, fired.append, "farther")
        sim.run()
        assert fired == ["near", "mid", "far", "farther"]

    def test_same_time_fifo_by_seq(self):
        sim = Simulator()
        fired = []
        for tag in ("a", "b", "c"):
            sim.after(1_000, fired.append, tag)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_jump_over_long_empty_gap(self):
        sim = Simulator()
        fired = []
        sim.after(100, fired.append, "first")
        # Far past the whole wheel span: requires a cursor jump, not a
        # slot-by-slot crawl.
        sim.after(1_000 * WHEEL_SPAN_NS, fired.append, "second")
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 1_000 * WHEEL_SPAN_NS

    def test_schedule_now_executes(self):
        sim = Simulator()
        fired = []
        sim.after(500, lambda: sim.after(0, fired.append, sim.now))
        sim.run()
        assert fired == [500]

    def test_run_until_advances_clock_when_drained(self):
        sim = Simulator()
        sim.after(100, lambda: None)
        sim.run(until=10_000)
        assert sim.now == 10_000

    def test_heap_only_mode_equivalent(self):
        def exercise(use_wheel):
            sim = Simulator(use_timer_wheel=use_wheel)
            sim.order_log = []
            for i in range(40):
                delay = (i * 7919) % (3 * WHEEL_SPAN_NS) + 1
                h = sim.after(delay, lambda: None)
                if i % 5 == 0:
                    h.cancel()
            sim.every(WHEEL_SLOT_NS, lambda: None)
            sim.run(until=3 * WHEEL_SPAN_NS)
            return sim.order_log, sim.now

        assert exercise(True) == exercise(False)

    def test_wheel_constants_sane(self):
        assert WHEEL_SPAN_NS == WHEEL_SLOT_NS * WHEEL_SLOTS
        # The span must comfortably cover the 1 ms scheduler tick, the
        # highest-frequency periodic event in the system.
        assert WHEEL_SPAN_NS > 2 * 1_000_000
