"""Barrelfish-specific timing and ordering behaviour."""

import pytest

from repro import build_system
from repro.mm.addr import PAGE_SIZE

from helpers import make_proc, run_to_completion


def timed_shared_unmap(system, n_threads=None):
    kernel = system.kernel
    proc, tasks = make_proc(system, n_threads=n_threads)
    box = {}

    def body():
        t0, c0 = tasks[0], kernel.machine.core(0)
        vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
        for t in tasks:
            core = kernel.machine.core(t.home_core_id)
            yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
        start = system.sim.now
        yield from kernel.syscalls.munmap(t0, c0, vrange)
        box["munmap_ns"] = system.sim.now - start

    run_to_completion(system, body())
    return box["munmap_ns"]


class TestBarrelfishVsLinux:
    def test_cheaper_than_linux_but_dearer_than_latr(self):
        """Table 2's middle ground: no interrupts, still a synchronous wait."""
        times = {
            mech: timed_shared_unmap(build_system(mech, cores=8))
            for mech in ("linux", "barrelfish", "latr")
        }
        assert times["latr"] < times["barrelfish"] < times["linux"]

    def test_remote_work_is_polling_not_interrupts(self):
        system = build_system("barrelfish", cores=4)
        timed_shared_unmap(system)
        for core in system.kernel.machine.cores:
            assert core.interrupts_received == 0
        # The remote polling work still displaced the remote tasks a bit.
        remote = system.kernel.machine.core(1)
        assert remote._pending_interrupt_ns >= 0  # accounted via steal_time

    def test_message_count_matches_targets(self):
        system = build_system("barrelfish", cores=6)
        timed_shared_unmap(system)
        assert system.stats.counter("barrelfish.messages").value == 5

    def test_local_only_sends_nothing(self):
        system = build_system("barrelfish", cores=4)
        timed_shared_unmap(system, n_threads=1)
        assert system.stats.counter("barrelfish.messages").value == 0

    def test_poll_delay_scales_munmap(self):
        """A slower polling loop directly lengthens the synchronous wait."""
        fast_sys = build_system("barrelfish", cores=4)
        slow_sys = build_system("barrelfish", cores=4)
        slow_sys.kernel.coherence.poll_delay_ns = 20_000
        fast = timed_shared_unmap(fast_sys)
        slow = timed_shared_unmap(slow_sys)
        assert slow > fast + 15_000
