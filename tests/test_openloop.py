"""Open-loop workload, arrival processes, and window-gating regressions.

The open-loop runs here use the small commodity box with a handful of
cores -- the 120-core fleet configuration belongs to the ``slo``
experiment and the bench suite, not to tier-1.
"""

import random

import pytest

from repro.sim.arrivals import (
    MarkovModulatedArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.sim.engine import SEC
from repro.workloads.openloop import run_openloop

#: Small, fast open-loop scope shared by the tests below.
SMALL = dict(
    machine="commodity-2s16c",
    cores=4,
    offered_kreq_s=40.0,
    connections=16,
    conn_churn_per_sec=200.0,
    warmup_ms=3,
    duration_ms=12,
)


class TestArrivals:
    def test_poisson_deterministic_per_seed(self):
        gaps_a = PoissonArrivals(random.Random(7), 1000.0).gaps(200)
        gaps_b = PoissonArrivals(random.Random(7), 1000.0).gaps(200)
        assert gaps_a == gaps_b

    def test_poisson_mean_rate(self):
        arr = PoissonArrivals(random.Random(3), 5000.0)
        gaps = arr.gaps(20_000)
        measured = len(gaps) / (sum(gaps) / SEC)
        assert measured == pytest.approx(5000.0, rel=0.05)
        assert arr.mean_rate_per_sec == 5000.0

    def test_poisson_rate_sweep_replays_same_uniforms(self):
        # Doubling the rate must halve every gap, not redraw the stream --
        # this keeps offered-load sweeps comparable point to point.
        lo = PoissonArrivals(random.Random(11), 1000.0).gaps(100)
        hi = PoissonArrivals(random.Random(11), 2000.0).gaps(100)
        for g_lo, g_hi in zip(lo, hi):
            assert abs(g_lo - 2 * g_hi) <= 1  # int truncation slack

    def test_bursty_long_run_mean_matches_requested(self):
        arr = make_arrivals("bursty", random.Random(5), 2000.0)
        assert arr.mean_rate_per_sec == pytest.approx(2000.0)
        gaps = arr.gaps(40_000)
        measured = len(gaps) / (sum(gaps) / SEC)
        assert measured == pytest.approx(2000.0, rel=0.1)

    def test_bursty_is_burstier_than_poisson(self):
        # Same mean rate: the MMPP's gap variance must exceed Poisson's
        # (that is the entire reason it exists).
        poisson = make_arrivals("poisson", random.Random(9), 1000.0).gaps(20_000)
        bursty = make_arrivals(
            "bursty", random.Random(9), 1000.0, burst_factor=8.0
        ).gaps(20_000)

        def variance(xs):
            m = sum(xs) / len(xs)
            return sum((x - m) ** 2 for x in xs) / len(xs)

        assert variance(bursty) > variance(poisson)

    def test_mmpp_rejects_bad_params(self):
        with pytest.raises(ValueError):
            MarkovModulatedArrivals(random.Random(1), -5.0)
        with pytest.raises(ValueError):
            MarkovModulatedArrivals(random.Random(1), 100.0, burst_factor=0.5)
        with pytest.raises(ValueError):
            PoissonArrivals(random.Random(1), 0.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_arrivals("uniform", random.Random(1), 100.0)


class TestOpenLoopWorkload:
    def test_smoke_metrics_complete(self):
        result = run_openloop("latr", **SMALL)
        for key in (
            "offered_kreq_s",
            "achieved_kreq_s",
            "latency_p50_us",
            "latency_p99_us",
            "latency_p999_us",
            "backlog_requests",
            "samples",
        ):
            assert key in result.metrics
        assert result.metric("achieved_kreq_s") > 0
        assert result.metric("samples") > 0
        assert (
            result.metric("latency_p50_us")
            <= result.metric("latency_p99_us")
            <= result.metric("latency_p999_us")
        )

    def test_deterministic_across_runs(self):
        a = run_openloop("latr", **SMALL)
        b = run_openloop("latr", **SMALL)
        assert a.metrics == b.metrics
        assert a.counters == b.counters

    def test_batched_and_generic_fault_paths_agree(self):
        # The batched touch_pages path is a wall-clock optimisation only:
        # every modelled result must match the per-page generic path.
        batched = run_openloop("linux", use_batched_faults=True, **SMALL)
        generic = run_openloop("linux", use_batched_faults=False, **SMALL)
        assert batched.metrics == generic.metrics
        assert batched.counters == generic.counters

    def test_overload_grows_backlog_and_tail(self):
        light = run_openloop("linux", **{**SMALL, "offered_kreq_s": 2.0})
        heavy = run_openloop("linux", **{**SMALL, "offered_kreq_s": 400.0})
        assert heavy.metric("backlog_requests") > light.metric("backlog_requests")
        assert heavy.metric("latency_p999_us") > light.metric("latency_p999_us")
        # Open loop: the achieved rate saturates below the offered rate.
        assert heavy.metric("achieved_kreq_s") < heavy.metric("offered_kreq_s")

    def test_bursty_arrival_runs(self):
        result = run_openloop("latr", **{**SMALL, "arrival": "bursty"})
        assert result.metric("samples") > 0


class TestWindowGatingDelta:
    """The warmup-pollution bugfix, asserted end to end."""

    def test_warmup_samples_excluded_from_percentiles(self):
        # Many connections on few cores: establishment storms through
        # mmap_sem during warmup, so requests arriving then queue for ages.
        scope = {**SMALL, "connections": 96, "warmup_ms": 6}
        gated = run_openloop("linux", gate_latencies=True, **scope)
        legacy = run_openloop("linux", gate_latencies=False, **scope)
        # Same simulation either way: modelled counters cannot move.
        assert gated.counters == legacy.counters
        assert gated.metric("achieved_kreq_s") == legacy.metric("achieved_kreq_s")
        # The legacy recorder keeps the warmup samples, so it reports a
        # different -- polluted -- distribution over more samples.
        assert gated.metric("samples") < legacy.metric("samples")
        percentiles = ("latency_p50_us", "latency_p99_us", "latency_p999_us")
        assert tuple(gated.metric(p) for p in percentiles) != tuple(
            legacy.metric(p) for p in percentiles
        )
