"""End-to-end calibration: the simulated costs land on the paper's numbers.

These tests are the contract between the latency model and the evaluation:
if a constant changes, the affected figure-level claim must still hold. The
bands are deliberately loose (this is a simulator, not the authors' iron)
but directional claims are asserted exactly.
"""

import pytest

from repro.hw.latency import DEFAULT_LATENCY
from repro.workloads.microbench import MicrobenchConfig, MunmapMicrobench


def run_micro(mech, cores, pages=1, machine="commodity-2s16c", reps=30):
    bench = MunmapMicrobench(
        MicrobenchConfig(machine=machine, cores=cores, pages=pages, reps=reps)
    )
    return bench.run(mech)


class TestTable5Primitives:
    def test_latr_primitive_costs_match_paper(self):
        assert DEFAULT_LATENCY.latr_state_write_ns == 132
        assert DEFAULT_LATENCY.latr_sweep_base_ns == 158


class TestFigure6:
    """2-socket/16-core, single page."""

    def test_linux_munmap_cost_band(self):
        result = run_micro("linux", 16)
        assert 6.0 < result.metric("munmap_us") < 11.0  # paper ~8 us

    def test_linux_shootdown_fraction(self):
        result = run_micro("linux", 16)
        assert 0.55 < result.metric("shootdown_fraction") < 0.80  # paper 71.6%

    def test_latr_improvement_band(self):
        linux = run_micro("linux", 16)
        latr = run_micro("latr", 16)
        improvement = 1 - latr.metric("munmap_us") / linux.metric("munmap_us")
        assert 0.55 < improvement < 0.80  # paper 70.8%

    def test_latr_absolute_cost(self):
        latr = run_micro("latr", 16)
        assert 1.5 < latr.metric("munmap_us") < 3.5  # paper ~2.4 us

    def test_cost_grows_with_cores(self):
        costs = [run_micro("linux", n).metric("munmap_us") for n in (2, 8, 16)]
        assert costs[0] < costs[1] < costs[2]


class TestFigure7:
    """8-socket/120-core machine."""

    def test_linux_large_numa_cost(self):
        result = run_micro("linux", 120, machine="large-numa-8s120c", reps=10)
        assert 80.0 < result.metric("munmap_us") < 160.0  # paper >120 us

    def test_latr_large_numa_cost(self):
        result = run_micro("latr", 120, machine="large-numa-8s120c", reps=10)
        assert result.metric("munmap_us") < 45.0  # paper <40 us

    def test_improvement_band(self):
        linux = run_micro("linux", 120, machine="large-numa-8s120c", reps=10)
        latr = run_micro("latr", 120, machine="large-numa-8s120c", reps=10)
        improvement = 1 - latr.metric("munmap_us") / linux.metric("munmap_us")
        assert 0.55 < improvement < 0.80  # paper 66.7%

    def test_two_hop_cliff(self):
        """Figure 7's jump past 3 sockets (45 cores): super-linear rise."""
        c30 = run_micro("linux", 30, machine="large-numa-8s120c", reps=10)
        c90 = run_micro("linux", 90, machine="large-numa-8s120c", reps=10)
        ratio = c90.metric("shootdown_us") / c30.metric("shootdown_us")
        assert ratio > 3.5  # more than proportional to cores (3x)


class TestFigure8:
    def test_improvement_shrinks_with_pages(self):
        improvements = []
        for pages in (1, 64, 512):
            linux = run_micro("linux", 16, pages=pages, reps=8)
            latr = run_micro("latr", 16, pages=pages, reps=8)
            improvements.append(1 - latr.metric("munmap_us") / linux.metric("munmap_us"))
        assert improvements[0] > improvements[1] > improvements[2]
        assert improvements[2] > 0.0  # LATR still ahead at 512 pages

    def test_full_flush_caps_shootdown_cost(self):
        """Linux's 32-page rule: shootdown cost stops growing past it."""
        at_32 = run_micro("linux", 16, pages=32, reps=8).metric("shootdown_us")
        at_128 = run_micro("linux", 16, pages=128, reps=8).metric("shootdown_us")
        assert at_128 < at_32


class TestIpiScale:
    def test_ipi_round_cost_bands(self):
        """Section 1: IPI round ~2.7 us at 16 cores, shootdown up to 6 us;
        up to 80 us at 120 cores."""
        small = run_micro("linux", 16).metric("shootdown_us")
        assert 3.5 < small < 8.0
        large = run_micro("linux", 120, machine="large-numa-8s120c", reps=10).metric(
            "shootdown_us"
        )
        assert 55.0 < large < 110.0  # paper: up to 82 us

    def test_latr_never_sends_ipis_for_frees(self):
        result = run_micro("latr", 16)
        assert result.counters.get("ipi.sent", 0) == 0
        assert result.metric("fallback_ipis") == 0
