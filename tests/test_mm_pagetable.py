"""Unit tests for the 4-level page table."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.mm.addr import HUGE_PAGE_PAGES, VirtRange
from repro.mm.pagetable import PageTable
from repro.mm.pte import Pte, PteFlags, make_huge_pte, make_present_pte


class TestBasics:
    def test_walk_empty(self):
        pt = PageTable()
        assert pt.walk(0) is None
        assert pt.walk(1 << 35) is None

    def test_set_and_walk(self):
        pt = PageTable()
        pte = make_present_pte(pfn=42)
        assert pt.set_pte(123, pte) is None
        assert pt.walk(123).pfn == 42
        assert len(pt) == 1

    def test_set_returns_previous(self):
        pt = PageTable()
        pt.set_pte(5, make_present_pte(1))
        prev = pt.set_pte(5, make_present_pte(2))
        assert prev.pfn == 1
        assert len(pt) == 1

    def test_clear(self):
        pt = PageTable()
        pt.set_pte(5, make_present_pte(1))
        cleared = pt.clear_pte(5)
        assert cleared.pfn == 1
        assert pt.walk(5) is None
        assert len(pt) == 0

    def test_clear_missing_returns_none(self):
        pt = PageTable()
        assert pt.clear_pte(999) is None

    def test_update_requires_existing(self):
        pt = PageTable()
        with pytest.raises(KeyError):
            pt.update_pte(7, make_present_pte(1))
        pt.set_pte(7, make_present_pte(1))
        pt.update_pte(7, make_present_pte(9))
        assert pt.walk(7).pfn == 9

    def test_update_over_huge_replaces_in_place(self):
        pt = PageTable()
        pt.set_huge_pte(0, make_huge_pte(100))
        v0 = pt._version
        # Any vpn under the huge mapping rewrites the single PD entry,
        # with exactly one version bump and no clear/re-add churn.
        pt.update_pte(37, make_huge_pte(200))
        assert pt.walk(37).pfn == 200
        assert pt.walk(0).pfn == 200
        assert pt.huge_count() == 1
        assert len(pt) == 0
        assert pt._version == v0 + 1

    def test_distant_vpns_do_not_collide(self):
        pt = PageTable()
        # Same low 9 bits, different upper levels.
        a, b = 0x1, 0x1 | (1 << 9) | (1 << 18) | (1 << 27)
        pt.set_pte(a, make_present_pte(10))
        pt.set_pte(b, make_present_pte(20))
        assert pt.walk(a).pfn == 10
        assert pt.walk(b).pfn == 20


class TestStructure:
    def test_table_pages_allocated_on_demand(self):
        pt = PageTable()
        assert pt.table_pages_allocated == 1
        pt.set_pte(0, make_present_pte(1))
        assert pt.table_pages_allocated == 4  # root + 3 interior levels

    def test_interior_nodes_pruned_on_clear(self):
        pt = PageTable()
        pt.set_pte(0, make_present_pte(1))
        pt.clear_pte(0)
        assert pt._root == {}

    def test_sibling_not_pruned(self):
        pt = PageTable()
        pt.set_pte(0, make_present_pte(1))
        pt.set_pte(1, make_present_pte(2))
        pt.clear_pte(0)
        assert pt.walk(1) is not None


class TestIteration:
    def test_entries_in_range(self):
        pt = PageTable()
        for vpn in (10, 11, 13, 20):
            pt.set_pte(vpn, make_present_pte(vpn))
        vr = VirtRange.from_pages(10, 5)  # vpns 10..14
        found = dict(pt.entries_in_range(vr))
        assert sorted(found) == [10, 11, 13]

    def test_all_entries_sorted(self):
        pt = PageTable()
        vpns = [99, 1, 2**30, 512]
        for vpn in vpns:
            pt.set_pte(vpn, make_present_pte(vpn))
        walked = [vpn for vpn, _ in pt.all_entries()]
        assert walked == sorted(vpns)

    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        vpns=st.lists(
            st.integers(0, 6 * HUGE_PAGE_PAGES - 1), max_size=40, unique=True
        ),
        huge_bases=st.lists(
            st.sampled_from([6 * HUGE_PAGE_PAGES, 7 * HUGE_PAGE_PAGES,
                             9 * HUGE_PAGE_PAGES]),
            max_size=3, unique=True,
        ),
        start=st.integers(0, 10 * HUGE_PAGE_PAGES),
        span=st.integers(1, 4 * HUGE_PAGE_PAGES),
    )
    def test_radix_descent_equivalent_to_probing(
        self, vpns, huge_bases, start, span
    ):
        """Satellite gate: the radix-descending ``entries_in_range`` must
        yield exactly what the old per-vpn probing walk yielded -- same
        pairs, same order -- over mixed 4K + huge tables and arbitrary
        ranges (including ones starting mid-huge-page)."""
        pt = PageTable()
        for vpn in vpns:
            pt.set_pte(vpn, make_present_pte(vpn))
        for base in huge_bases:
            pt.set_huge_pte(base, make_huge_pte(base))
        vr = VirtRange.from_pages(start, span)
        assert list(pt.entries_in_range(vr)) == list(
            pt._entries_in_range_probing(vr)
        )

    def test_range_start_inside_huge_mapping(self):
        pt = PageTable()
        pt.set_huge_pte(0, make_huge_pte(0))
        vr = VirtRange.from_pages(HUGE_PAGE_PAGES // 2, HUGE_PAGE_PAGES)
        assert list(pt.entries_in_range(vr)) == list(
            pt._entries_in_range_probing(vr)
        )

    def test_descent_cost_scales_with_mapped_not_range(self):
        """The whole point of the radix descent: a huge sparse range costs
        O(mapped entries), where probing walked every vpn."""
        pt = PageTable()
        pt.set_pte(0, make_present_pte(1))
        pt.set_pte(1 << 34, make_present_pte(2))
        vr = VirtRange.from_pages(0, (1 << 34) + 1)  # ~16G pages
        assert [vpn for vpn, _ in pt.entries_in_range(vr)] == [0, 1 << 34]


class TestPteFlags:
    def test_make_present(self):
        pte = make_present_pte(5, writable=True)
        assert pte.present and pte.writable and not pte.cow

    def test_cow_strips_write(self):
        pte = make_present_pte(5, writable=True, cow=True)
        assert pte.cow and not pte.writable

    def test_numa_hint_roundtrip(self):
        pte = make_present_pte(5)
        hinted = pte.make_numa_hint()
        assert hinted.numa_hint and not hinted.present
        assert hinted.pfn == 5
        restored = hinted.clear_numa_hint()
        assert restored.present and not restored.numa_hint

    def test_swap_pte(self):
        from repro.mm.pte import make_swap_pte

        pte = make_swap_pte(77)
        assert pte.swapped and not pte.present
        assert pte.swap_slot == 77

    def test_with_flags(self):
        pte = make_present_pte(1, writable=False)
        upgraded = pte.with_flags(add=PteFlags.WRITE)
        assert upgraded.writable
        downgraded = upgraded.with_flags(drop=PteFlags.WRITE)
        assert not downgraded.writable
