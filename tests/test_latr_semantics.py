"""LATR mechanism semantics: the paper's sections 3, 4.1-4.5.

These tests pin down the *timeline* of a lazy shootdown: what is true at
munmap return, what becomes true at the next tick, and what the reclamation
daemon does two ticks later.
"""

import pytest

from repro import build_system
from repro.kernel.invariants import (
    check_all,
    check_no_stale_entries_for,
    check_tlb_frame_safety,
)
from repro.mm.addr import PAGE_SIZE
from repro.sim.engine import MSEC

from helpers import make_proc, run_to_completion, drain


def share_and_unmap(system, n_pages=2, n_threads=None):
    """Map, share across all threads, munmap from core 0. Returns (proc,
    tasks, vrange, munmap_duration)."""
    kernel = system.kernel
    proc, tasks = make_proc(system, n_threads=n_threads)
    holder = {}

    def body():
        t0, c0 = tasks[0], kernel.machine.core(0)
        vrange = yield from kernel.syscalls.mmap(t0, c0, n_pages * PAGE_SIZE)
        for t in tasks:
            core = kernel.machine.core(t.home_core_id)
            yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
        start = system.sim.now
        yield from kernel.syscalls.munmap(t0, c0, vrange)
        holder["duration"] = system.sim.now - start
        holder["vrange"] = vrange

    run_to_completion(system, body())
    return proc, tasks, holder["vrange"], holder["duration"]


class TestLazyShootdown:
    def test_no_ipis_on_free(self):
        system = build_system("latr", cores=4)
        share_and_unmap(system)
        assert system.stats.counter("ipi.sent").value == 0
        assert system.stats.counter("latr.states_posted").value == 1

    def test_remote_entries_survive_munmap_return(self):
        """The asynchrony itself: at munmap return remote TLBs are stale."""
        system = build_system("latr", cores=4)
        proc, tasks, vrange, _ = share_and_unmap(system)
        stale = check_no_stale_entries_for(system.kernel, proc.mm, vrange)
        # Cores 1..3 each still hold both pages' entries.
        assert len(stale) == 3 * vrange.n_pages

    def test_entries_gone_within_one_tick(self):
        """Paper section 3: the tick interval bounds staleness at 1 ms."""
        system = build_system("latr", cores=4)
        proc, tasks, vrange, _ = share_and_unmap(system)
        drain(system, ms=1.999 // 1 + 1)  # one full tick on every core
        assert check_no_stale_entries_for(system.kernel, proc.mm, vrange) == []

    def test_frames_held_until_two_ticks(self):
        """Paper 4.2: reclamation waits two scheduler-tick intervals."""
        system = build_system("latr", cores=4)
        proc, tasks, vrange, _ = share_and_unmap(system)
        n = vrange.n_pages
        assert len(proc.mm.lazy_frames) == n
        free_at_unmap = system.kernel.frames.free_count()
        drain(system, ms=1)
        assert len(proc.mm.lazy_frames) == n  # still pinned after 1 tick
        drain(system, ms=3)
        assert proc.mm.lazy_frames == []
        assert system.kernel.frames.free_count() == free_at_unmap + n
        assert system.stats.counter("latr.states_reclaimed").value == 1

    def test_virtual_range_not_reused_until_reclaim(self):
        system = build_system("latr", cores=4)
        kernel = system.kernel
        proc, tasks = make_proc(system)
        ranges = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            first = yield from kernel.syscalls.mmap(t0, c0, 2 * PAGE_SIZE)
            for t in tasks:
                core = kernel.machine.core(t.home_core_id)
                yield from kernel.syscalls.touch_pages(t, core, first)
            yield from kernel.syscalls.munmap(t0, c0, first)
            second = yield from kernel.syscalls.mmap(t0, c0, 2 * PAGE_SIZE)
            ranges["first"], ranges["second"] = first, second

        run_to_completion(system, body())
        assert not ranges["first"].overlaps(ranges["second"])
        # After reclamation the range is reusable again.
        drain(system, ms=5)

        def remap():
            t0, c0 = tasks[0], kernel.machine.core(0)
            third = yield from kernel.syscalls.mmap(t0, c0, 2 * PAGE_SIZE)
            ranges["third"] = third

        run_to_completion(system, remap())
        assert ranges["third"] == ranges["first"]

    def test_munmap_faster_than_linux(self):
        latr = build_system("latr", cores=16)
        linux = build_system("linux", cores=16)
        _, _, _, t_latr = share_and_unmap(latr, n_pages=1)
        _, _, _, t_linux = share_and_unmap(linux, n_pages=1)
        assert t_latr < t_linux
        # Paper Figure 6: ~70% improvement at 16 cores; accept a band.
        improvement = 1 - t_latr / t_linux
        assert 0.5 < improvement < 0.85

    def test_safety_invariant_holds_throughout(self):
        system = build_system("latr", cores=4)
        proc, tasks, vrange, _ = share_and_unmap(system)
        for _ in range(8):
            drain(system, ms=0.5 if False else 1)
            assert check_tlb_frame_safety(system.kernel) == []
        assert check_all(system.kernel) == []

    def test_local_only_free_is_immediate(self):
        """With no remote sharers LATR frees eagerly like Linux."""
        system = build_system("latr", cores=4)
        proc, tasks, vrange, _ = share_and_unmap(system, n_threads=1)
        assert proc.mm.lazy_frames == []
        assert system.stats.counter("latr.states_posted").value == 0


class TestSweepTriggers:
    def test_sweep_on_tick(self):
        system = build_system("latr", cores=2)
        make_proc(system)
        drain(system, ms=3)
        assert system.stats.counter("latr.sweeps").value >= 4

    def test_sweep_on_context_switch(self):
        system = build_system("latr", cores=2)
        proc, tasks = make_proc(system)
        sweeps_before = system.stats.counter("latr.sweeps").value
        system.kernel.scheduler.synthetic_context_switch(system.kernel.machine.core(0))
        assert system.stats.counter("latr.sweeps").value == sweeps_before + 1

    def test_sweep_toggles(self):
        system = build_system("latr", cores=2, sweep_on_context_switch=False)
        proc, tasks = make_proc(system)
        before = system.stats.counter("latr.sweeps").value
        system.kernel.scheduler.synthetic_context_switch(system.kernel.machine.core(0))
        assert system.stats.counter("latr.sweeps").value == before

    def test_idle_cores_do_not_sweep(self):
        """Tickless rule (paper section 7)."""
        system = build_system("latr", cores=2)
        # No tasks at all: both cores idle.
        for core in system.kernel.machine.cores:
            core.enter_idle()
        drain(system, ms=5)
        assert system.stats.counter("latr.sweeps").value == 0
        assert system.stats.counter("sched.ticks_idle_skipped").value > 0

    def test_sweep_cost_recorded(self):
        system = build_system("latr", cores=2)
        make_proc(system)
        drain(system, ms=2)
        rec = system.stats.latency("latr.sweep")
        assert rec.count > 0
        assert rec.mean >= 158  # at least the Table 5 base cost


class TestQueueFullFallback:
    def test_fallback_to_ipi(self):
        """Paper section 8: full per-core queue -> IPI fallback."""
        system = build_system("latr", cores=2, queue_depth=2)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            t1, c1 = tasks[1], kernel.machine.core(1)
            for _ in range(5):
                vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
                yield from kernel.syscalls.touch_pages(t0, c0, vrange)
                yield from kernel.syscalls.touch_pages(t1, c1, vrange)
                yield from kernel.syscalls.munmap(t0, c0, vrange)

        run_to_completion(system, body())
        assert system.stats.counter("latr.fallback_ipi").value == 3
        assert system.stats.counter("ipi.sent").value == 3
        # Fallback frees are immediate and correct.
        drain(system, ms=5)
        assert check_all(kernel) == []

    def test_deep_queue_avoids_fallback(self):
        system = build_system("latr", cores=2, queue_depth=64)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            t1, c1 = tasks[1], kernel.machine.core(1)
            for _ in range(5):
                vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
                yield from kernel.syscalls.touch_pages(t0, c0, vrange)
                yield from kernel.syscalls.touch_pages(t1, c1, vrange)
                yield from kernel.syscalls.munmap(t0, c0, vrange)

        run_to_completion(system, body())
        assert system.stats.counter("latr.fallback_ipi").value == 0


class TestSynchronousClassesUnderLatr:
    """Table 1's 'lazy not possible' rows stay synchronous even under LATR."""

    def test_mprotect_is_synchronous(self):
        system = build_system("latr", cores=4)
        kernel = system.kernel
        proc, tasks = make_proc(system)
        from repro.mm.vma import Prot

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, 2 * PAGE_SIZE)
            for t in tasks:
                core = kernel.machine.core(t.home_core_id)
                yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
            yield from kernel.syscalls.mprotect(t0, c0, vrange, Prot.ro())

        run_to_completion(system, body())
        assert system.stats.counter("ipi.sent").value == 3
        assert system.stats.counter("shootdown.sync.mprotect").value == 1
        # No core may retain a (writable) translation.
        for core in kernel.machine.cores[1:]:
            assert len(core.tlb) == 0

    def test_mremap_is_synchronous(self):
        system = build_system("latr", cores=2)
        kernel = system.kernel
        proc, tasks = make_proc(system)
        out = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            t1, c1 = tasks[1], kernel.machine.core(1)
            vrange = yield from kernel.syscalls.mmap(t0, c0, 2 * PAGE_SIZE)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
            yield from kernel.syscalls.touch_pages(t1, c1, vrange)
            new_range = yield from kernel.syscalls.mremap(t0, c0, vrange, 2 * PAGE_SIZE)
            out["old"], out["new"] = vrange, new_range

        run_to_completion(system, body())
        assert system.stats.counter("shootdown.sync.mremap").value == 1
        assert system.stats.counter("ipi.sent").value == 1
        # Old range immediately reusable (synchronous completion).
        assert not proc.mm.vrange_is_lazy(out["old"])
        # Pages moved: the new range translates to the same frames.
        old_vpn, new_vpn = out["old"].vpn_start, out["new"].vpn_start
        assert proc.mm.page_table.walk(old_vpn) is None
        assert proc.mm.page_table.walk(new_vpn) is not None


class TestPcidMode:
    def test_pcid_entries_tagged_and_swept(self):
        system = build_system("latr", cores=4, pcid=True)
        proc, tasks, vrange, _ = share_and_unmap(system)
        assert any(core.tlb.pcid_enabled for core in system.kernel.machine.cores)
        drain(system, ms=3)
        assert check_no_stale_entries_for(system.kernel, proc.mm, vrange) == []
        assert check_all(system.kernel) == []

    def test_without_pcid_context_switch_flushes(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc_a, tasks_a = make_proc(system, n_threads=1, name="a")
        proc_b = kernel.create_process("b")
        task_b = proc_b.add_thread("t0", 0)

        def body():
            t0, c0 = tasks_a[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange)
            assert len(c0.tlb) == 1

            def noop():
                yield from c0.execute(10)

            yield from kernel.scheduler.run_on(c0, task_b, noop())
            assert len(c0.tlb) == 0  # switch to another mm flushed

        run_to_completion(system, body())
