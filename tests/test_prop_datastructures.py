"""Property-based tests (hypothesis) for the core data structures."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.mm.addr import PAGE_SIZE, VirtRange
from repro.mm.frames import FrameAllocator, FrameAllocatorError
from repro.mm.pagetable import PageTable
from repro.mm.pte import make_present_pte
from repro.mm.vma import Prot, Vma, VmaSet, VmaSetError

SETTINGS = settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestPageTableVsShadow:
    """The 4-level radix table must behave exactly like a flat dict."""

    @SETTINGS
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["set", "clear", "walk"]),
                st.integers(min_value=0, max_value=(1 << 36) - 1),
                st.integers(min_value=0, max_value=1 << 20),
            ),
            max_size=200,
        )
    )
    def test_matches_dict_model(self, ops):
        pt = PageTable()
        shadow = {}
        for op, vpn, pfn in ops:
            if op == "set":
                pte = make_present_pte(pfn)
                prev = pt.set_pte(vpn, pte)
                assert prev == shadow.get(vpn)
                shadow[vpn] = pte
            elif op == "clear":
                assert pt.clear_pte(vpn) == shadow.pop(vpn, None)
            else:
                assert pt.walk(vpn) == shadow.get(vpn)
        assert len(pt) == len(shadow)
        assert dict(pt.all_entries()) == shadow

    @SETTINGS
    @given(vpns=st.sets(st.integers(min_value=0, max_value=(1 << 36) - 1), max_size=60))
    def test_teardown_prunes_everything(self, vpns):
        pt = PageTable()
        for vpn in vpns:
            pt.set_pte(vpn, make_present_pte(vpn))
        for vpn in vpns:
            pt.clear_pte(vpn)
        assert len(pt) == 0
        assert pt._root == {}


class TestFrameAllocatorProperties:
    @SETTINGS
    @given(
        ops=st.lists(st.sampled_from(["alloc", "get", "put"]), max_size=300),
        nodes=st.integers(min_value=1, max_value=4),
    )
    def test_refcount_conservation(self, ops, nodes):
        """No frame is ever both free and referenced; counts always add up."""
        frames = FrameAllocator(nodes=nodes, frames_per_node=16)
        live = {}  # pfn -> expected refcount
        for op in ops:
            if op == "alloc":
                try:
                    pfn = frames.alloc(node=0)
                except FrameAllocatorError:
                    assert len(live) == frames.total_frames
                    continue
                assert pfn not in live
                live[pfn] = 1
            elif op == "get" and live:
                pfn = next(iter(live))
                frames.get(pfn)
                live[pfn] += 1
            elif op == "put" and live:
                pfn = next(iter(live))
                freed = frames.put(pfn)
                live[pfn] -= 1
                assert freed == (live[pfn] == 0)
                if live[pfn] == 0:
                    del live[pfn]
            # Global invariants after every step:
            assert frames.allocated_count() == len(live)
            assert frames.free_count() == frames.total_frames - len(live)
            for pfn, expected in live.items():
                assert frames.refcount(pfn) == expected

    @SETTINGS
    @given(cycles=st.integers(min_value=1, max_value=30))
    def test_generation_strictly_increases_per_frame(self, cycles):
        frames = FrameAllocator(nodes=1, frames_per_node=1)
        last_gen = -1
        for _ in range(cycles):
            pfn = frames.alloc()
            gen = frames.generation(pfn)
            assert gen > last_gen or last_gen == -1
            last_gen = gen
            frames.put(pfn)


def _ranges(max_page=200):
    return st.tuples(
        st.integers(min_value=0, max_value=max_page),
        st.integers(min_value=1, max_value=20),
    ).map(lambda t: VirtRange.from_pages(t[0], t[1]))


class TestVmaSetProperties:
    @SETTINGS
    @given(ops=st.lists(st.tuples(st.sampled_from(["map", "unmap"]), _ranges()), max_size=60))
    def test_never_overlaps_and_matches_page_model(self, ops):
        """The VMA set must always equal a page-granular shadow set."""
        vmas = VmaSet()
        shadow = set()  # set of mapped vpns
        for op, vrange in ops:
            if op == "map":
                try:
                    vmas.insert(Vma(range=vrange, prot=Prot.rw()))
                except VmaSetError:
                    assert any(v in shadow for v in vrange.vpns())
                    continue
                assert not any(v in shadow for v in vrange.vpns())
                shadow |= set(vrange.vpns())
            else:
                removed = vmas.remove_range(vrange)
                removed_vpns = set()
                for piece in removed:
                    removed_vpns |= set(piece.range.vpns())
                assert removed_vpns == shadow & set(vrange.vpns())
                shadow -= removed_vpns
            # Invariants: sorted, non-overlapping, page model matches.
            mapped = set()
            prev_end = -1
            for vma in vmas:
                assert vma.start >= prev_end
                prev_end = vma.end
                mapped |= set(vma.range.vpns())
            assert mapped == shadow

    @SETTINGS
    @given(vrange=_ranges(), probe=st.integers(min_value=0, max_value=220 * PAGE_SIZE))
    def test_find_agrees_with_contains(self, vrange, probe):
        vmas = VmaSet()
        vmas.insert(Vma(range=vrange, prot=Prot.rw()))
        found = vmas.find(probe)
        if vrange.contains(probe):
            assert found is not None and found.range == vrange
        else:
            assert found is None


class TestSoaQueueVsObjectShadow:
    """The struct-of-arrays LATR queue must be observationally identical to
    the object-model queue under any post/pull/clear/reclaim sequence."""

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        depth=st.integers(min_value=1, max_value=6),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["post", "clear", "pull", "reclaim"]),
                st.integers(min_value=0, max_value=1_000),
                st.integers(min_value=0, max_value=7),
            ),
            max_size=120,
        ),
    )
    def test_shadow_models_agree(self, depth, ops):
        from repro.coherence.states import (
            LatrFlag,
            LatrState,
            LatrStateQueue,
            SoaLatrQueue,
            SoaLatrState,
        )
        from repro.mm.mmstruct import MmStruct
        from repro.sim.engine import Signal, Simulator

        sim = Simulator()
        mm = MmStruct(sim)
        obj_q = LatrStateQueue(core_id=0, depth=depth)
        soa_q = SoaLatrQueue(core_id=0, depth=depth)
        pairs = []  # (object state, SoA state), in posting order
        now = 0
        for kind, pick, core in ops:
            now += 1
            if kind == "post":
                cpus = {core, (pick % 8)}
                flag = LatrFlag.FREE if pick % 3 else LatrFlag.MIGRATION
                made = []
                for state_cls in (LatrState, SoaLatrState):
                    made.append(
                        state_cls(
                            vrange=VirtRange.from_pages(10 + pick % 50, 1 + pick % 4),
                            mm=mm,
                            cpu_bitmask=set(cpus),
                            flag=flag,
                            owner_core=0,
                            posted_at=now,
                            done=Signal(sim),
                        )
                    )
                obj_s, soa_s = made
                accepted_obj = obj_q.post(obj_s)
                accepted_soa = soa_q.post(soa_s)
                assert accepted_obj == accepted_soa
                if accepted_obj:
                    pairs.append((obj_s, soa_s))
            elif not pairs:
                continue
            else:
                obj_s, soa_s = pairs[pick % len(pairs)]
                if kind == "clear":
                    assert obj_s.clear_cpu(core, now) == soa_s.clear_cpu(core, now)
                elif kind == "pull":
                    obj_s.pulled_by.add(core)
                    soa_s.pulled_by.add(core)
                else:
                    obj_s.reclaimed = True
                    soa_s.reclaimed = True
            assert obj_q.active_count == soa_q.active_count
            assert obj_q.occupancy() == soa_q.occupancy()
            assert obj_q.posts == soa_q.posts
            assert obj_q.full_rejections == soa_q.full_rejections
            active_obj = obj_q.active_states_after(-1)
            active_soa = soa_q.active_states_after(-1)
            assert [s.slot_idx for s in active_obj] == [s.slot_idx for s in active_soa]
        # Final deep comparison: every state pair ever posted (attached or
        # recycled) agrees on all observable fields.
        for obj_s, soa_s in pairs:
            assert sorted(obj_s.cpu_bitmask) == sorted(soa_s.cpu_bitmask)
            assert sorted(obj_s.pulled_by) == sorted(soa_s.pulled_by)
            assert obj_s.active == soa_s.active
            assert obj_s.pte_applied == soa_s.pte_applied
            assert obj_s.reclaimed == soa_s.reclaimed
            assert obj_s.completed_at == soa_s.completed_at
        assert obj_q.footprint_bytes() == soa_q.footprint_bytes()
