"""Equivalence tests for the LATR active-state sweep index.

The index (`LatrCoherence._sweep_indexed`) must charge the exact modelled
costs of the original full scan (`_sweep_full`) -- every counter, latency
and rate bit-for-bit identical -- while doing asymptotically less simulator
work. The strongest check replays full differential-fuzzer plans with both
implementations and compares complete ``StatsRegistry.summary()`` dicts.
"""

from __future__ import annotations

import pytest
from helpers import drain, make_proc, run_to_completion

from repro import build_system
from repro.mm.addr import PAGE_SIZE
from repro.verify.fuzzer import run_one
from repro.verify.plan import generate_plan


class TestFuzzPlanEquivalence:
    """Replay fuzzer plans with and without the index: identical stats."""

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_indexed_and_full_scan_stats_identical(self, seed):
        plan = generate_plan(seed, 40, n_cores=4, n_procs=2)
        indexed = run_one(
            "latr", plan, latr_kwargs={"use_sweep_index": True}
        )
        full = run_one(
            "latr", plan, latr_kwargs={"use_sweep_index": False}
        )
        assert indexed.clean, (indexed.violations, indexed.errors)
        assert full.clean, (full.violations, full.errors)
        assert indexed.stats_summary == full.stats_summary
        assert indexed.snapshot == full.snapshot
        assert indexed.sim_time_ns == full.sim_time_ns


class TestIndexBookkeeping:
    def _munmap_once(self, system, proc, tasks, pages=1):
        kernel = system.kernel
        sc = kernel.syscalls

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            t1, c1 = tasks[1], kernel.machine.core(1)
            vr = yield from sc.mmap(t0, c0, pages * PAGE_SIZE)
            yield from sc.touch_pages(t0, c0, vr, write=True)
            yield from sc.touch_pages(t1, c1, vr)
            yield from sc.munmap(t0, c0, vr)

        run_to_completion(system, body())

    def test_count_matches_full_scan_through_lifecycle(self):
        system = build_system("latr", cores=4)
        proc, tasks = make_proc(system)
        coherence = system.kernel.coherence

        def scan_count():
            return sum(
                1
                for queue in coherence.queues.values()
                for _ in queue.active_states()
            )

        assert coherence.active_state_count() == scan_count() == 0
        self._munmap_once(system, proc, tasks)
        assert coherence.active_state_count() == scan_count() == 1
        # Ticks sweep the state away; reclamation retires it.
        drain(system, ms=6)
        assert coherence.active_state_count() == scan_count() == 0

    def test_empty_sweep_costs_exactly_base(self):
        system = build_system("latr", cores=4)
        make_proc(system)
        coherence = system.kernel.coherence
        lat = system.machine.latency
        cost = coherence.sweep(system.machine.core(0))
        assert cost == lat.latr_sweep_base_ns

    def test_repeat_sweep_skips_already_cleared_states(self):
        system = build_system("latr", cores=4)
        proc, tasks = make_proc(system)
        coherence = system.kernel.coherence
        lat = system.machine.latency
        self._munmap_once(system, proc, tasks)
        core1 = system.machine.core(1)
        first = coherence.sweep(core1)
        # The state stays active (other cores' bits remain) and is charged
        # per-entry in both sweeps, but the second sweep starts beyond the
        # cursor: no re-pull, no matching work -- only base + per-entry.
        assert coherence.active_state_count() == 1
        second = coherence.sweep(core1)
        assert first > second
        assert second == lat.latr_sweep_base_ns + lat.latr_sweep_per_entry_ns

    def test_deactivation_via_direct_assignment_updates_counts(self):
        # Fallback paths and fuzzer mutations retire states by assigning
        # ``active = False`` directly; the notifying property must keep the
        # queue and global counts exact anyway.
        system = build_system("latr", cores=2)
        proc, tasks = make_proc(system)
        self._munmap_once(system, proc, tasks)
        coherence = system.kernel.coherence
        (state,) = [
            s for q in coherence.queues.values() for s in q.active_states()
        ]
        queue = state.queue
        assert queue.active_count == 1
        state.active = False
        assert queue.active_count == 0
        assert coherence.active_state_count() == 0
        state.active = False  # idempotent: no double-decrement
        assert coherence.active_state_count() == 0

    def test_full_scan_flag_disables_index_path(self):
        system = build_system("latr", cores=4, use_sweep_index=False)
        proc, tasks = make_proc(system)
        assert system.kernel.coherence.use_sweep_index is False
        self._munmap_once(system, proc, tasks)
        drain(system, ms=6)
        assert system.stats.counter("latr.sweeps").value > 0
        assert system.stats.counter("latr.entries_invalidated").value >= 1
