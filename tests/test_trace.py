"""Event tracing: the Tracer itself and the coherence-path hooks."""

import pytest

from repro import build_system
from repro.mm.addr import PAGE_SIZE
from repro.sim.engine import Simulator
from repro.sim.trace import TraceEvent, Tracer

from helpers import make_proc, run_to_completion, drain


class TestTracerUnit:
    def test_emit_and_query(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.emit("a", "x", core=0)
        sim.after(10, lambda: tracer.emit("b", "y", core=1, detail="d"))
        sim.run()
        assert len(tracer) == 2
        events = list(tracer.query(category="b"))
        assert len(events) == 1
        assert events[0].time_ns == 10 and events[0].detail == "d"

    def test_query_filters_compose(self):
        sim = Simulator()
        tracer = Tracer(sim)
        for core in (0, 1):
            tracer.emit("a", "x", core=core)
            tracer.emit("a", "y", core=core)
        assert len(list(tracer.query(category="a", name="x", core=1))) == 1

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(Simulator(), capacity=3)
        for i in range(5):
            tracer.emit("c", str(i))
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [e.name for e in tracer.query()] == ["2", "3", "4"]
        assert tracer.emitted == 5

    def test_counts(self):
        tracer = Tracer(Simulator())
        tracer.emit("a", "x")
        tracer.emit("a", "x")
        tracer.emit("b", "y")
        assert tracer.counts() == {"a.x": 2, "b.y": 1}

    def test_format_and_dump(self):
        sim = Simulator()
        tracer = Tracer(sim)
        sim.after(1_500_000, lambda: tracer.emit("a", "x", core=3, detail="k=1"))
        sim.run()
        line = tracer.format(next(iter(tracer.query())))
        assert "1.5000 ms" in line and "a.x" in line and "core=3" in line
        assert "a.x" in tracer.dump()

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(Simulator(), capacity=0)


class TestCoherenceTraceHooks:
    def _traced_unmap(self, mech):
        system = build_system(mech, cores=4)
        tracer = Tracer(system.sim)
        system.kernel.tracer = tracer
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
            for t in tasks:
                core = kernel.machine.core(t.home_core_id)
                yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
            yield from kernel.syscalls.munmap(t0, c0, vrange)

        run_to_completion(system, body())
        drain(system, ms=4)
        return tracer

    def test_linux_emits_ipi_rounds(self):
        tracer = self._traced_unmap("linux")
        counts = tracer.counts()
        assert counts.get("ipi.round.start", 0) >= 1
        assert counts.get("ipi.round.start") == counts.get("ipi.round.end")
        assert "latr.state.post" not in counts

    def test_latr_emits_lifecycle(self):
        tracer = self._traced_unmap("latr")
        counts = tracer.counts()
        assert counts.get("latr.state.post") == 1
        assert counts.get("latr.sweep", 0) >= 3  # each remote core swept
        assert counts.get("latr.reclaim") == 1
        assert "ipi.round.start" not in counts

    def test_lifecycle_is_time_ordered(self):
        tracer = self._traced_unmap("latr")
        post = next(tracer.query(category="latr", name="state.post"))
        sweeps = list(tracer.query(category="latr", name="sweep"))
        reclaim = next(tracer.query(category="latr", name="reclaim"))
        assert post.time_ns < min(s.time_ns for s in sweeps)
        assert max(s.time_ns for s in sweeps) < reclaim.time_ns
        # Staleness and reclamation bounds visible in the trace:
        assert max(s.time_ns for s in sweeps) - post.time_ns <= 1_100_000
        assert reclaim.time_ns - post.time_ns >= 2_000_000

    def test_no_tracer_no_events_no_crash(self):
        system = build_system("latr", cores=2)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE, populate=True)
            yield from kernel.syscalls.munmap(t0, c0, vrange)

        run_to_completion(system, body())
        assert kernel.tracer is None
