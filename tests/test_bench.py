"""Tests for the wall-clock benchmark harness (`python -m repro bench`)."""

from __future__ import annotations

import json
import os

from repro.bench import (
    CaseResult,
    compare_to_previous,
    previous_bench_file,
    run_bench,
    run_sweep_stress,
)


def _fake_case(name, wall_s, **extra):
    return CaseResult(name=name, wall_s=wall_s, events=1000, extra=extra)


class TestRegressionComparison:
    def test_no_previous_means_no_regressions(self):
        assert compare_to_previous({"a": {"wall_s": 1.0}}, None, 25.0) == []

    def test_flags_only_cases_beyond_threshold(self):
        previous = {
            "cases": {
                "fast": {"wall_s": 1.0},
                "slow": {"wall_s": 1.0},
                "gone": {"wall_s": 1.0},
            }
        }
        current = {
            "fast": {"wall_s": 1.1},   # +10%: fine
            "slow": {"wall_s": 1.5},   # +50%: regression
            "new": {"wall_s": 9.0},    # no baseline: skipped
        }
        regressions = compare_to_previous(current, previous, 25.0)
        assert len(regressions) == 1
        assert regressions[0].startswith("slow:")

    def test_different_sim_ms_not_compared(self):
        previous = {"cases": {"stress": {"wall_s": 0.1, "sim_ms": 8}}}
        current = {"stress": {"wall_s": 0.9, "sim_ms": 30}}
        assert compare_to_previous(current, previous, 25.0) == []


class TestRunBench:
    def test_writes_json_and_detects_regression(self, tmp_path):
        bench_dir = str(tmp_path)
        lines = []
        report1, code1 = run_bench(
            bench_dir=bench_dir,
            suite=[lambda: _fake_case("case-a", 0.1)],
            echo=lines.append,
        )
        assert code1 == 0
        first = previous_bench_file(bench_dir)
        assert first is not None
        with open(first) as fh:
            on_disk = json.load(fh)
        assert on_disk["cases"]["case-a"]["wall_s"] == 0.1
        assert on_disk["comparison"]["previous"] is None

        # A much slower second run against the first: regression detected,
        # exit code non-zero only with check_regression.
        report2, code2 = run_bench(
            bench_dir=bench_dir,
            suite=[lambda: _fake_case("case-a", 0.5)],
            check_regression=True,
            threshold_pct=25.0,
            echo=lines.append,
        )
        assert code2 == 1
        comparison = report2["comparison"]
        assert comparison["previous"] == os.path.basename(first)
        assert len(comparison["regressions"]) == 1
        assert any("REGRESSION" in line for line in lines)

    def test_stats_mismatch_fails_even_without_check_regression(self, tmp_path):
        _report, code = run_bench(
            bench_dir=str(tmp_path),
            suite=[lambda: _fake_case("stress", 0.1, stats_match=False)],
            echo=lambda _line: None,
        )
        assert code == 1


class TestSweepStressEquivalence:
    def test_indexed_and_full_scan_agree_on_small_machine(self):
        # The real case runs 120 cores; a 16-core variant keeps the suite
        # fast while exercising the identical driver and comparison.
        indexed = run_sweep_stress(4, use_sweep_index=True, machine="commodity-2s16c")
        full = run_sweep_stress(4, use_sweep_index=False, machine="commodity-2s16c")
        assert indexed == full
        assert indexed["count.latr.sweeps"] > 0
        assert indexed["count.shootdown.initiated"] > 0


class TestOpenLoopStressCase:
    def test_events_floor_failure_fails_the_run(self, tmp_path):
        _report, code = run_bench(
            bench_dir=str(tmp_path),
            suite=[
                lambda: _fake_case(
                    "openloop-stress-120c",
                    0.1,
                    events_floor_ok=False,
                    min_events_per_sec=300_000.0,
                    floor_rounds=8,
                )
            ],
            echo=lambda _line: None,
        )
        assert code == 1

    def test_small_scope_tables_match(self, monkeypatch):
        # Shrink the stress scope so tier-1 stays fast; the equivalence
        # check (batched vs generic fault path) is scope-independent.
        import repro.bench as bench

        monkeypatch.setattr(
            bench,
            "OPENLOOP_STRESS_SCOPE",
            dict(
                machine="commodity-2s16c",
                mechanism="linux",
                offered_kreq_s=20.0,
                request_work_ns=200_000,
                request_pages=1,
                conn_churn_per_sec=0.0,
                warmup_ms=2,
                duration_ms=10,
            ),
        )
        monkeypatch.setattr(bench, "OPENLOOP_MIN_EVENTS_PER_SEC", 0.0)
        monkeypatch.setattr(bench, "OPENLOOP_FLOOR_ROUNDS", 1)
        case = bench._openloop_stress_case()
        assert case.extra["tables_match"] is True
        assert case.extra["events_floor_ok"] is True
        assert case.events > 0
