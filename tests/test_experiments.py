"""Experiment registry, rendering, CLI, and the cheap experiment runners."""

import pytest

from repro.cli import main
from repro.experiments import available_experiments, run_experiment
from repro.experiments.runner import ExperimentResult


class TestRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        exp_ids = set(available_experiments())
        required = {
            "fig1", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12",
            "tab1", "tab2", "tab3", "tab4", "tab5",
            "memoverhead",
        }
        assert required <= exp_ids

    def test_ablations_registered(self):
        exp_ids = set(available_experiments())
        assert {"abl-queue", "abl-reclaim", "abl-sweep", "abl-pcid", "abl-flushthresh"} <= exp_ids

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestRendering:
    def test_render_contains_everything(self):
        result = ExperimentResult(
            exp_id="x",
            title="demo",
            headers=("a", "b"),
            rows=[(1, 2.5), ("long-cell", 3)],
            paper_expectation="expected",
            notes="note",
        )
        text = result.render()
        assert "== x: demo ==" in text
        assert "long-cell" in text
        assert "2.50" in text
        assert "paper: expected" in text
        assert "notes: note" in text

    def test_columns_aligned(self):
        result = ExperimentResult("x", "t", ("col",), [("value-wider-than-header",)])
        lines = result.render().splitlines()
        assert len(lines[1]) == len(lines[3])


class TestCheapExperiments:
    """Fast-mode runs of the inexpensive experiments, end to end."""

    def test_tab1(self):
        result = run_experiment("tab1", fast=True)
        assert len(result.rows) == 9

    def test_tab2(self):
        result = run_experiment("tab2", fast=True)
        latr = next(r for r in result.rows if r[0] == "LATR")
        assert latr[1:] == ("yes", "yes", "yes", "yes")

    def test_tab3(self):
        result = run_experiment("tab3", fast=True)
        assert {row[0] for row in result.rows} == {"commodity-2s16c", "large-numa-8s120c"}

    def test_fig2_timeline_ordering(self):
        result = run_experiment("fig2", fast=True)
        latr_times = [row[2] for row in result.rows if row[0] == "latr"]
        assert latr_times == sorted(latr_times)

    def test_fig6_fast(self):
        result = run_experiment("fig6", fast=True)
        assert all(row[-1] > 0 for row in result.rows)  # LATR always wins

    def test_abl_sweep(self):
        result = run_experiment("abl-sweep", fast=True)
        assert len(result.rows) == 2


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "tab5" in out

    def test_run_one(self, capsys):
        assert main(["tab1"]) == 0
        out = capsys.readouterr().out
        assert "munmap(): unmap address range" in out

    def test_unknown_id(self, capsys):
        assert main(["nope"]) == 2

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "results.txt"
        assert main(["tab2", "-o", str(target)]) == 0
        assert "LATR" in target.read_text()


class TestCsvExport:
    def test_to_csv_roundtrip(self):
        result = ExperimentResult(
            "x", "t", ("a", "b"), [(1, 2.5), ("s,with,commas", 3)]
        )
        text = result.to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert '"s,with,commas"' in lines[2]

    def test_cli_csv_dir(self, tmp_path, capsys):
        target = tmp_path / "csvs"
        assert main(["tab3", "--csv-dir", str(target)]) == 0
        content = (target / "tab3.csv").read_text()
        assert content.startswith("machine,")
        assert "commodity-2s16c" in content
