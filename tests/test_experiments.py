"""Experiment registry, rendering, CLI, and the cheap experiment runners."""

import pytest

from repro.cli import main
from repro.experiments import available_experiments, run_experiment
from repro.experiments.runner import ExperimentResult


class TestRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        exp_ids = set(available_experiments())
        required = {
            "fig1", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12",
            "tab1", "tab2", "tab3", "tab4", "tab5",
            "memoverhead",
        }
        assert required <= exp_ids

    def test_ablations_registered(self):
        exp_ids = set(available_experiments())
        assert {"abl-queue", "abl-reclaim", "abl-sweep", "abl-pcid", "abl-flushthresh"} <= exp_ids

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestRendering:
    def test_render_contains_everything(self):
        result = ExperimentResult(
            exp_id="x",
            title="demo",
            headers=("a", "b"),
            rows=[(1, 2.5), ("long-cell", 3)],
            paper_expectation="expected",
            notes="note",
        )
        text = result.render()
        assert "== x: demo ==" in text
        assert "long-cell" in text
        assert "2.50" in text
        assert "paper: expected" in text
        assert "notes: note" in text

    def test_columns_aligned(self):
        result = ExperimentResult("x", "t", ("col",), [("value-wider-than-header",)])
        lines = result.render().splitlines()
        assert len(lines[1]) == len(lines[3])


class TestCheapExperiments:
    """Fast-mode runs of the inexpensive experiments, end to end."""

    def test_tab1(self):
        result = run_experiment("tab1", fast=True)
        assert len(result.rows) == 9

    def test_tab2(self):
        result = run_experiment("tab2", fast=True)
        latr = next(r for r in result.rows if r[0] == "LATR")
        assert latr[1:] == ("yes", "yes", "yes", "yes")

    def test_tab3(self):
        result = run_experiment("tab3", fast=True)
        # The paper's two Table 3 boxes plus the fleet-scale extension
        # preset used by the open-loop slo scenario.
        assert {row[0] for row in result.rows} == {
            "commodity-2s16c",
            "large-numa-8s120c",
            "fleet-16s960c",
        }

    def test_fig2_timeline_ordering(self):
        result = run_experiment("fig2", fast=True)
        latr_times = [row[2] for row in result.rows if row[0] == "latr"]
        assert latr_times == sorted(latr_times)

    def test_fig6_fast(self):
        result = run_experiment("fig6", fast=True)
        assert all(row[-1] > 0 for row in result.rows)  # LATR always wins

    def test_abl_sweep(self):
        result = run_experiment("abl-sweep", fast=True)
        assert len(result.rows) == 2


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "tab5" in out

    def test_run_one(self, capsys):
        assert main(["tab1"]) == 0
        out = capsys.readouterr().out
        assert "munmap(): unmap address range" in out

    def test_unknown_id(self, capsys):
        assert main(["nope"]) == 2

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "results.txt"
        assert main(["tab2", "-o", str(target)]) == 0
        assert "LATR" in target.read_text()


class TestCsvExport:
    def test_to_csv_roundtrip(self):
        result = ExperimentResult(
            "x", "t", ("a", "b"), [(1, 2.5), ("s,with,commas", 3)]
        )
        text = result.to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert '"s,with,commas"' in lines[2]

    def test_cli_csv_dir(self, tmp_path, capsys):
        target = tmp_path / "csvs"
        assert main(["tab3", "--csv-dir", str(target)]) == 0
        content = (target / "tab3.csv").read_text()
        assert content.startswith("machine,")
        assert "commodity-2s16c" in content


class TestTailTableColumns:
    """Regression: the munmap rows used to put ``munmap_us`` (the mean)
    under the "p50 us" header."""

    def test_munmap_row_p50_column_is_the_median(self):
        from repro.experiments.tail_latency import (
            APACHE_MECHS,
            MICRO_MECHS,
            tail_assemble,
        )

        class FakeResult:
            def __init__(self, tag):
                self.tag = tag

            def metric(self, name):
                return f"{self.tag}:{name}"

        values = [FakeResult(f"apache-{m}") for m in APACHE_MECHS]
        values += [FakeResult(f"micro-{m}") for m in MICRO_MECHS]
        result = tail_assemble(values)
        assert result.headers == ("quantity", "p50 us", "p99 us", "p99.9 us")
        by_label = {row[0]: row for row in result.rows}
        for mech in MICRO_MECHS:
            row = by_label[f"munmap syscall ({mech})"]
            # The value under "p50 us" must come from munmap_p50_us -- not
            # from the munmap_us mean, and not shifted into another column.
            assert row[1] == f"micro-{mech}:munmap_p50_us"
            assert row[2] == f"micro-{mech}:munmap_p99_us"
        for mech in APACHE_MECHS:
            row = by_label[f"apache request ({mech})"]
            assert row[1] == f"apache-{mech}:latency_p50_us"
