"""Scheduler behaviour: ticks, idle cores, cooperative multiplexing."""

import pytest

from repro import build_system
from repro.sim.engine import MSEC

from helpers import make_proc, run_to_completion, drain


class TestTicks:
    def test_ticks_fire_per_running_core(self):
        system = build_system("latr", cores=4)
        make_proc(system)
        drain(system, ms=5)
        # 4 cores x ~5 ticks each (first tick at the stagger offset).
        assert 16 <= system.stats.counter("sched.ticks").value <= 24

    def test_tick_stagger_spreads_phases(self):
        """No two cores tick at the same instant (unsynchronized ticks are
        why the reclamation delay is two intervals)."""
        system = build_system("latr", cores=4)
        kernel = system.kernel
        make_proc(system)
        tick_times = {i: [] for i in range(4)}
        original = kernel.coherence.on_tick

        def spy(core):
            tick_times[core.id].append(system.sim.now)
            original(core)

        kernel.coherence.on_tick = spy
        drain(system, ms=4)
        firsts = sorted(times[0] % MSEC for times in tick_times.values() if times)
        assert len(set(firsts)) == 4

    def test_idle_cores_are_tickless(self):
        system = build_system("latr", cores=2)
        for core in system.kernel.machine.cores:
            core.enter_idle()
        drain(system, ms=3)
        assert system.stats.counter("sched.ticks_idle_skipped").value >= 4


class TestRunOn:
    def test_serializes_tasks_on_one_core(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc_a, tasks_a = make_proc(system, n_threads=1, name="a")
        proc_b = kernel.create_process("b")
        task_b = proc_b.add_thread("t0", 0)
        core = kernel.machine.core(0)
        trace = []

        def work(tag):
            def gen():
                trace.append((tag, "start", system.sim.now))
                yield from core.execute(10_000)
                trace.append((tag, "end", system.sim.now))

            return gen()

        def driver_a():
            yield from kernel.scheduler.run_on(core, tasks_a[0], work("a"))

        def driver_b():
            yield from kernel.scheduler.run_on(core, task_b, work("b"))

        system.sim.spawn(driver_a())
        system.sim.spawn(driver_b())
        drain(system, ms=1)
        # b starts only after a ended.
        order = [t for t in trace]
        assert order[0][0] == "a" and order[1] == ("a", "end", order[1][2])
        assert order[2][0] == "b"
        assert order[2][2] >= order[1][2]

    def test_context_switch_cost_and_counter(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc_a, tasks_a = make_proc(system, n_threads=1, name="a")
        proc_b = kernel.create_process("b")
        task_b = proc_b.add_thread("t0", 0)
        core = kernel.machine.core(0)

        def noop():
            yield from core.execute(100)

        def driver():
            yield from kernel.scheduler.run_on(core, tasks_a[0], noop())
            yield from kernel.scheduler.run_on(core, task_b, noop())
            yield from kernel.scheduler.run_on(core, tasks_a[0], noop())

        run_to_completion(system, driver())
        assert system.stats.counter("sched.context_switches").value == 2

    def test_mm_cpumask_updated_on_switch(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc_a, tasks_a = make_proc(system, n_threads=1, name="a")
        proc_b = kernel.create_process("b")
        task_b = proc_b.add_thread("t0", 0)
        core = kernel.machine.core(0)

        def noop():
            yield from core.execute(100)

        def driver():
            yield from kernel.scheduler.run_on(core, task_b, noop())

        run_to_completion(system, driver())
        # Without PCIDs, switching away flushes and drops the old mm's bit.
        assert 0 not in proc_a.mm.cpumask
        assert 0 in proc_b.mm.cpumask

    def test_same_task_no_switch(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system, n_threads=1)
        core = kernel.machine.core(0)

        def noop():
            yield from core.execute(100)

        def driver():
            yield from kernel.scheduler.run_on(core, tasks[0], noop())
            yield from kernel.scheduler.run_on(core, tasks[0], noop())

        run_to_completion(system, driver())
        assert system.stats.counter("sched.context_switches").value == 0


class TestPlacement:
    def test_place_and_exit(self):
        system = build_system("latr", cores=2)
        kernel = system.kernel
        proc, tasks = make_proc(system, n_threads=2)
        core = kernel.machine.core(1)
        assert core.current_task is tasks[1]
        kernel.scheduler.task_exit(tasks[1])
        assert core.idle and core.lazy_tlb_mode
