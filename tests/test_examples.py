"""Smoke test: every script in examples/ must keep running cleanly.

The examples import ``build_system`` and the workload configs directly, so
they pin the public API the experiment refactor rides on. Each script runs
in a fresh interpreter (they are documentation, not a library).
"""

from __future__ import annotations

import glob
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")
SRC_DIR = os.path.join(REPO_ROOT, "src")

EXAMPLE_SCRIPTS = sorted(glob.glob(os.path.join(EXAMPLES_DIR, "*.py")))


def test_examples_exist():
    assert len(EXAMPLE_SCRIPTS) >= 8


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[os.path.basename(s) for s in EXAMPLE_SCRIPTS]
)
def test_example_runs_cleanly(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, script],
        env=env,
        cwd=EXAMPLES_DIR,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{os.path.basename(script)} exited {proc.returncode}\n"
        f"stdout:\n{proc.stdout[-2000:]}\nstderr:\n{proc.stderr[-2000:]}"
    )
