"""Unit tests for machine specs (Table 3) and topology."""

import pytest

from repro.hw.spec import (
    COMMODITY_2S16C,
    FLEET_16S960C,
    LARGE_NUMA_8S120C,
    MachineSpec,
    preset,
)
from repro.hw.topology import Topology


class TestSpecs:
    def test_table3_commodity(self):
        spec = COMMODITY_2S16C
        assert spec.total_cores == 16
        assert spec.sockets == 2
        assert spec.l1_dtlb_entries == 64
        assert spec.l2_tlb_entries == 1024
        assert spec.llc_mb_per_socket == 20

    def test_table3_large_numa(self):
        spec = LARGE_NUMA_8S120C
        assert spec.total_cores == 120
        assert spec.sockets == 8
        assert spec.cores_per_socket == 15
        assert spec.l2_tlb_entries == 512

    def test_socket_of(self):
        spec = COMMODITY_2S16C
        assert spec.socket_of(0) == 0
        assert spec.socket_of(7) == 0
        assert spec.socket_of(8) == 1
        with pytest.raises(ValueError):
            spec.socket_of(16)

    def test_latr_state_footprint_paper_numbers(self):
        # Paper 4.1: 32 cores -> 136 KB; 192 cores -> 816 KB.
        spec32 = MachineSpec("x", 4, 8, 2.0, 64, 16, 64, 512)
        assert spec32.latr_state_footprint_bytes == 136 * 1024 + 2048 - 2048
        assert spec32.latr_state_footprint_bytes == 32 * 64 * 68
        assert spec32.latr_state_footprint_bytes / 1024 == pytest.approx(136, rel=0.01)
        spec192 = MachineSpec("y", 8, 24, 2.0, 64, 16, 64, 512)
        assert spec192.latr_state_footprint_bytes / 1024 == pytest.approx(816, rel=0.01)

    def test_with_cores_restriction(self):
        six = COMMODITY_2S16C.with_cores(6)
        assert six.total_cores >= 6
        assert six.sockets == 1
        twelve = COMMODITY_2S16C.with_cores(12)
        assert twelve.sockets == 2
        with pytest.raises(ValueError):
            COMMODITY_2S16C.with_cores(17)

    def test_fleet_spec(self):
        spec = FLEET_16S960C
        assert spec.total_cores == 960
        assert spec.sockets == 16
        assert spec.cores_per_socket == 60
        assert preset("fleet-16s960c") is spec

    def test_with_cores_fleet_socket_major_fill(self):
        # 500 cores fills sockets in order: ceil(500/60) = 9 sockets,
        # then ceil(500/9) = 56 cores each (>= the request, the way a
        # taskset-style run rounds to even per-socket populations).
        five_hundred = FLEET_16S960C.with_cores(500)
        assert five_hundred.sockets == 9
        assert five_hundred.cores_per_socket == 56
        assert five_hundred.total_cores == 504
        assert five_hundred.name == "fleet-16s960c@500c"
        # The full fleet is the identity restriction.
        full = FLEET_16S960C.with_cores(960)
        assert full.sockets == 16
        assert full.cores_per_socket == 60
        assert full.total_cores == 960

    def test_with_cores_fleet_invalid_restrictions(self):
        with pytest.raises(ValueError):
            FLEET_16S960C.with_cores(0)
        with pytest.raises(ValueError):
            FLEET_16S960C.with_cores(-1)
        with pytest.raises(ValueError):
            FLEET_16S960C.with_cores(961)

    def test_preset_lookup(self):
        assert preset("commodity-2s16c") is COMMODITY_2S16C
        with pytest.raises(KeyError):
            preset("nope")

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec("bad", 0, 4, 2.0, 64, 16, 64, 512)

    def test_full_flush_threshold_default(self):
        # Linux's 32-page heuristic (paper 6.2.1).
        assert COMMODITY_2S16C.full_flush_threshold == 32

    def test_latr_defaults(self):
        assert COMMODITY_2S16C.latr_states_per_core == 64
        assert COMMODITY_2S16C.latr_state_bytes == 68


class TestTopology:
    def test_two_socket_hops(self):
        topo = Topology(COMMODITY_2S16C)
        assert topo.core_hops(0, 1) == 0
        assert topo.core_hops(0, 8) == 1
        assert topo.max_hops() == 1

    def test_eight_socket_has_two_hop_pairs(self):
        topo = Topology(LARGE_NUMA_8S120C)
        assert topo.max_hops() == 2
        # Ring neighbours are one hop.
        assert topo.socket_hops(0, 1) == 1
        # The diagonal cross link is one hop.
        assert topo.socket_hops(0, 4) == 1
        # Something must be two hops on 8 sockets (paper Figure 7).
        assert topo.socket_hops(0, 2) == 2

    def test_symmetric(self):
        topo = Topology(LARGE_NUMA_8S120C)
        for a in range(8):
            for b in range(8):
                assert topo.socket_hops(a, b) == topo.socket_hops(b, a)

    def test_cores_on_socket(self):
        topo = Topology(COMMODITY_2S16C)
        assert topo.cores_on_socket(0) == list(range(8))
        assert topo.cores_on_socket(1) == list(range(8, 16))

    def test_numa_node_is_socket(self):
        topo = Topology(COMMODITY_2S16C)
        assert topo.numa_node_of(9) == 1
