"""Property-based tests for huge-page structures and mixed-size fuzzing."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import build_system
from repro.hw.tlb import HUGE_SPAN, Tlb, TlbEntry
from repro.kernel.invariants import check_all, check_tlb_frame_safety
from repro.mm.addr import HUGE_PAGE_PAGES, HUGE_PAGE_SIZE, PAGE_SIZE
from repro.mm.frames import FrameAllocator, FrameAllocatorError
from repro.mm.pagetable import PageTable
from repro.mm.pte import make_huge_pte, make_present_pte
from repro.sim.engine import MSEC

SETTINGS = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestMixedPageTableProperties:
    @SETTINGS
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["set4k", "sethuge", "clear4k", "clearhuge", "walk"]),
                st.integers(min_value=0, max_value=4 * HUGE_PAGE_PAGES - 1),
            ),
            max_size=120,
        )
    )
    def test_mixed_sizes_match_shadow(self, ops):
        """4 KiB and 2 MiB entries never coexist over the same vpn, and the
        walk always agrees with a flat shadow model."""
        pt = PageTable()
        shadow_4k = {}
        shadow_huge = {}
        for op, vpn in ops:
            base = vpn - vpn % HUGE_PAGE_PAGES
            if op == "set4k":
                try:
                    pt.set_pte(vpn, make_present_pte(vpn))
                    shadow_4k[vpn] = vpn
                    assert base not in shadow_huge
                except ValueError:
                    assert base in shadow_huge
            elif op == "sethuge":
                try:
                    pt.set_huge_pte(base, make_huge_pte(base * 2))
                    shadow_huge[base] = base * 2
                    assert not any(base <= v < base + HUGE_PAGE_PAGES for v in shadow_4k)
                except ValueError:
                    assert base in shadow_huge or any(
                        base <= v < base + HUGE_PAGE_PAGES for v in shadow_4k
                    )
            elif op == "clear4k":
                cleared = pt.clear_pte(vpn)
                assert (cleared is not None) == (vpn in shadow_4k)
                shadow_4k.pop(vpn, None)
            elif op == "clearhuge":
                cleared = pt.clear_huge_pte(base)
                assert (cleared is not None) == (base in shadow_huge)
                shadow_huge.pop(base, None)
            else:
                pte = pt.walk(vpn)
                if base in shadow_huge:
                    assert pte is not None and pte.huge and pte.pfn == shadow_huge[base]
                elif vpn in shadow_4k:
                    assert pte is not None and pte.pfn == shadow_4k[vpn]
                else:
                    assert pte is None

    @SETTINGS
    @given(
        fills=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=8 * HUGE_SPAN - 1)),
            max_size=80,
        )
    )
    def test_tlb_lookup_agrees_with_shadow(self, fills):
        tlb = Tlb(capacity=1024, huge_capacity=1024)
        shadow_4k = {}
        shadow_huge = {}
        for is_huge, vpn in fills:
            if is_huge:
                base = vpn - vpn % HUGE_SPAN
                tlb.fill_huge(1, base, TlbEntry(pfn=base))
                shadow_huge[base] = base
            else:
                tlb.fill(1, vpn, TlbEntry(pfn=vpn))
                shadow_4k[vpn] = vpn
        for probe in range(0, 8 * HUGE_SPAN, HUGE_SPAN // 4):
            entry = tlb.peek(1, probe)
            base = probe - probe % HUGE_SPAN
            if probe in shadow_4k:
                assert entry is not None and entry.pfn == probe
            elif base in shadow_huge:
                assert entry is not None and entry.pfn == base
            else:
                assert entry is None


class TestContiguousAllocatorProperties:
    @SETTINGS
    @given(
        singles=st.integers(min_value=0, max_value=40),
        blocks=st.integers(min_value=0, max_value=3),
    )
    def test_contiguous_never_overlaps_singles(self, singles, blocks):
        frames = FrameAllocator(nodes=1, frames_per_node=4096)
        taken = set()
        for _ in range(singles):
            taken.add(frames.alloc(0))
        for _ in range(blocks):
            try:
                base = frames.alloc_contiguous(512, node=0)
            except FrameAllocatorError:
                continue
            block = set(range(base, base + 512))
            assert not (block & taken)
            assert base % 512 == 0
            taken |= block
        assert frames.allocated_count() == len(taken)


class TestHugeFuzz:
    @SETTINGS
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["mmap4k", "mmaphuge", "munmap", "touch"]),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=4,
            max_size=20,
        )
    )
    def test_mixed_mappings_stay_safe_under_latr(self, ops):
        system = build_system("latr", cores=4, frames_per_node=8192)
        kernel = system.kernel
        proc = kernel.create_process("fuzz")
        tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(4)]
        mappings = []
        violations = []

        def body():
            for op, who, which in ops:
                task = tasks[who]
                core = kernel.machine.core(task.home_core_id)
                if op == "mmap4k":
                    vrange = yield from kernel.syscalls.mmap(task, core, 8 * PAGE_SIZE)
                    mappings.append(vrange)
                elif op == "mmaphuge":
                    vrange = yield from kernel.syscalls.mmap(
                        task, core, HUGE_PAGE_SIZE, huge=True
                    )
                    mappings.append(vrange)
                elif op == "munmap" and mappings:
                    vrange = mappings.pop(which % len(mappings))
                    yield from kernel.syscalls.munmap(task, core, vrange)
                elif op == "touch" and mappings:
                    vrange = mappings[which % len(mappings)]
                    yield from kernel.syscalls.access(task, core, vrange.start, write=True)
                violations.extend(check_tlb_frame_safety(kernel))

        driver = system.sim.spawn(body())
        system.sim.run(until=100 * MSEC)
        assert not driver.alive
        assert violations == []
        system.sim.run(until=system.sim.now + 5 * MSEC)
        assert check_all(kernel) == []
