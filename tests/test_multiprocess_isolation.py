"""Multi-process isolation: cpumasks, PCIDs, and cross-process safety."""

import pytest

from repro import build_system
from repro.kernel.invariants import check_all, check_tlb_frame_safety
from repro.mm.addr import PAGE_SIZE

from helpers import run_to_completion, drain


def two_processes(system, cores_a=(0, 1), cores_b=(2, 3)):
    kernel = system.kernel
    proc_a = kernel.create_process("a")
    tasks_a = [kernel.spawn_thread(proc_a, f"t{c}", c) for c in cores_a]
    proc_b = kernel.create_process("b")
    tasks_b = [kernel.spawn_thread(proc_b, f"t{c}", c) for c in cores_b]
    return proc_a, tasks_a, proc_b, tasks_b


class TestShootdownScoping:
    def test_shootdown_targets_only_own_cpumask(self):
        """Process A's munmap must not interrupt process B's cores."""
        system = build_system("linux", cores=4)
        kernel = system.kernel
        proc_a, tasks_a, proc_b, tasks_b = two_processes(system)

        def body():
            t0, c0 = tasks_a[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
            for t in tasks_a:
                core = kernel.machine.core(t.home_core_id)
                yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
            yield from kernel.syscalls.munmap(t0, c0, vrange)

        run_to_completion(system, body())
        assert kernel.machine.core(1).interrupts_received == 1
        assert kernel.machine.core(2).interrupts_received == 0
        assert kernel.machine.core(3).interrupts_received == 0

    def test_latr_bitmask_scoped_to_process(self):
        system = build_system("latr", cores=4)
        kernel = system.kernel
        proc_a, tasks_a, proc_b, tasks_b = two_processes(system)
        box = {}

        def body():
            t0, c0 = tasks_a[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
            for t in tasks_a:
                core = kernel.machine.core(t.home_core_id)
                yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
            yield from kernel.syscalls.munmap(t0, c0, vrange)
            box["state"] = kernel.coherence._pending_reclaim[-1]

        run_to_completion(system, body())
        assert box["state"].cpu_bitmask == {1}

    def test_identical_va_in_two_processes_no_confusion(self):
        """Both processes map the same virtual address; freeing A's must
        not disturb B's translation or frame."""
        system = build_system("latr", cores=4)
        kernel = system.kernel
        proc_a, tasks_a, proc_b, tasks_b = two_processes(system)
        box = {}

        def body():
            ta, ca = tasks_a[0], kernel.machine.core(0)
            tb, cb = tasks_b[0], kernel.machine.core(2)
            ra = yield from kernel.syscalls.mmap(ta, ca, PAGE_SIZE, populate=True)
            rb = yield from kernel.syscalls.mmap(tb, cb, PAGE_SIZE, populate=True)
            assert ra == rb  # same VA space layout in both processes
            box["pfn_b"] = proc_b.mm.page_table.walk(rb.vpn_start).pfn
            yield from kernel.syscalls.munmap(ta, ca, ra)
            # B's mapping is untouched and still accessible.
            yield from kernel.syscalls.access(tb, cb, rb.start, write=True)

        run_to_completion(system, body())
        drain(system, ms=4)
        assert kernel.frames.is_allocated(box["pfn_b"])
        assert check_all(kernel) == []


class TestPcidMultiprocess:
    def test_entries_survive_switches_and_stay_safe(self):
        system = build_system("latr", cores=2, pcid=True)
        kernel = system.kernel
        proc_a, tasks_a, proc_b, tasks_b = two_processes(
            system, cores_a=(0,), cores_b=(1,)
        )
        core0 = kernel.machine.core(0)

        def body():
            ta = tasks_a[0]
            tb = tasks_b[0]
            ra = yield from kernel.syscalls.mmap(ta, core0, PAGE_SIZE, populate=True)

            def touch_b():
                yield from kernel.syscalls.mmap(tb, core0, PAGE_SIZE, populate=True)

            # Run B's work on core 0: with PCIDs the switch does NOT flush,
            # so A's entry survives.
            yield from kernel.scheduler.run_on(core0, tb, touch_b())
            assert core0.tlb.peek(proc_a.mm.pcid, ra.vpn_start) is not None
            # And A's unmap (back on core 0) still invalidates correctly.
            yield from kernel.scheduler.run_on(
                core0, ta, kernel.syscalls.munmap(ta, core0, ra)
            )

        run_to_completion(system, body())
        drain(system, ms=4)
        assert check_tlb_frame_safety(kernel) == []
        assert check_all(kernel) == []

    def test_without_pcid_switch_flushes_other_process(self):
        system = build_system("latr", cores=2, pcid=False)
        kernel = system.kernel
        proc_a, tasks_a, proc_b, tasks_b = two_processes(
            system, cores_a=(0,), cores_b=(1,)
        )
        core0 = kernel.machine.core(0)

        def body():
            ta, tb = tasks_a[0], tasks_b[0]
            ra = yield from kernel.syscalls.mmap(ta, core0, PAGE_SIZE, populate=True)
            assert len(core0.tlb) == 1

            def noop():
                yield from core0.execute(10)

            yield from kernel.scheduler.run_on(core0, tb, noop())
            assert len(core0.tlb) == 0

        run_to_completion(system, body())


class TestAbisSharersAcrossProcesses:
    def test_sharer_sets_keyed_by_mm(self):
        system = build_system("abis", cores=4)
        kernel = system.kernel
        proc_a, tasks_a, proc_b, tasks_b = two_processes(system)

        def body():
            ta, ca = tasks_a[0], kernel.machine.core(0)
            tb, cb = tasks_b[0], kernel.machine.core(2)
            ra = yield from kernel.syscalls.mmap(ta, ca, PAGE_SIZE, populate=True)
            rb = yield from kernel.syscalls.mmap(tb, cb, PAGE_SIZE, populate=True)
            # Same vpn, different mms: the tracked sharers must not merge.
            coherence = kernel.coherence
            assert coherence._sharers.get((proc_a.mm.mm_id, ra.vpn_start)) == {0}
            assert coherence._sharers.get((proc_b.mm.mm_id, rb.vpn_start)) == {2}
            yield from kernel.syscalls.munmap(ta, ca, ra)
            # A's shootdown consumed only A's tracking entry.
            assert (proc_a.mm.mm_id, ra.vpn_start) not in coherence._sharers
            assert (proc_b.mm.mm_id, rb.vpn_start) in coherence._sharers

        run_to_completion(system, body())
