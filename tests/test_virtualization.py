"""Two-level translation (virtualization) test suite.

Covers the virtualization axis end to end:

* the ``use_virtualization`` escape hatch: off-mode runs are
  *byte-identical* to flat runs (stats summaries, canonical end states,
  and simulated time, across fuzz seeds) and carry no ``virt.*`` counters,
* a hypothesis shadow-model property: after any populate/invalidate
  sequence the host (EPT) table agrees entry-by-entry with a pair of flat
  shadow dicts, and every 2D walk composes to the same host frame,
* the 2D walk-cost model: step counts and charged nanoseconds match the
  latency table, parameterized across hugepage short-circuits,
* snapshot/restore round-trips host-table state hash-exactly,
* the ``broken_ept_shootdown`` mutation is caught by the invariant
  monitor (the fuzzer leg; the model-checker leg lives in the mc
  mutation audit, exercised by ``repro ci``'s virt-smoke).
"""

from __future__ import annotations

import hashlib
import pickle

import hypothesis.strategies as st
import pytest
from helpers import make_proc, run_to_completion
from hypothesis import HealthCheck, given, settings

from repro import build_system
from repro.hw.latency import LatencyModel
from repro.mm.addr import PAGE_SIZE
from repro.mm.pagetable import LEVELS, HostPageTable
from repro.snapshot import restore_kernel, snapshot_kernel
from repro.verify import generate_plan, run_one
from repro.verify.mc import McConfig, McScope, run_mc


# ---------------------------------------------------------------------------
# Escape hatch: off-mode is byte-identical to the flat baseline
# ---------------------------------------------------------------------------


class TestEscapeHatch:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_virtualization_off_is_flat_exactly(self, seed):
        """With virtualization forced off, every added charge site returns
        zero and no host table exists: event schedule, stats, and end
        state must all be bit-identical to the flat baseline."""
        plan = generate_plan(seed, 50)
        base = run_one("linux", plan)
        off = run_one("linux", plan, use_virtualization=False)
        assert base.clean and off.clean
        assert off.stats_summary == base.stats_summary
        assert off.snapshot == base.snapshot
        assert off.sim_time_ns == base.sim_time_ns

    @pytest.mark.parametrize("mech", ["linux", "latr", "hatric"])
    def test_on_mode_pays_2d_walks_and_host_invalidations(self, mech):
        plan = generate_plan(1, 60)
        on = run_one(mech, plan, use_virtualization=True)
        assert on.clean
        s = on.stats_summary
        assert s.get("count.virt.ept.populations", 0) > 0
        assert s.get("count.virt.walk.2d", 0) > 0
        assert s.get("count.virt.walk.2d_ns", 0) > 0
        assert s.get("count.virt.host_inval.entries", 0) > 0

    def test_off_mode_run_has_no_virt_counters(self):
        plan = generate_plan(1, 50)
        off = run_one("latr", plan, use_virtualization=False)
        assert not any(k.startswith("count.virt.") for k in off.stats_summary)

    def test_lazy_host_invalidation_defers_cost(self):
        """LATR's host policy writes one state synchronously and charges
        the per-entry invalidation off the critical path."""
        plan = generate_plan(1, 60)
        on = run_one("latr", plan, use_virtualization=True)
        assert on.stats_summary.get("count.virt.host_inval.deferred_ns", 0) > 0


# ---------------------------------------------------------------------------
# Hypothesis shadow-model property
# ---------------------------------------------------------------------------


_PFNS = st.integers(min_value=1, max_value=24)
_HOST_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("populate"), _PFNS, st.integers(0, 3)),
        st.tuples(st.just("invalidate"), _PFNS),
    ),
    min_size=1,
    max_size=80,
)


class TestShadowModel:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=_HOST_OPS)
    def test_host_table_agrees_with_flat_shadow(self, ops):
        host = HostPageTable()
        gfn_shadow = {}  # pfn -> gfn
        gen_shadow = {}  # gfn -> generation
        minted = 0
        for op in ops:
            if op[0] == "populate":
                _kind, pfn, gen = op
                created = host.populate(pfn, gen)
                if pfn not in gfn_shadow:
                    assert created
                    gfn_shadow[pfn] = minted
                    gen_shadow[minted] = gen
                    minted += 1
                else:
                    assert not created  # idempotent on refill
            else:
                pfn = op[1]
                gfn = host.invalidate_pfn(pfn)
                assert gfn == gfn_shadow.pop(pfn, None)
                if gfn is not None:
                    gen_shadow.pop(gfn)
            # The table mirrors the shadow both ways at every step, and
            # every 2D walk composes to the same host frame the shadow
            # composition yields.
            assert dict(host.gfn_of_pfn) == gfn_shadow
            assert dict(host.generation_of_gfn) == gen_shadow
            assert host.next_gfn == minted
            for pfn, gfn in gfn_shadow.items():
                pte = host.walk_gfn(gfn)
                assert pte is not None and pte.pfn == pfn
            # Invalidated gfns walk to nothing.
            for gfn in range(minted):
                if gfn not in gen_shadow:
                    assert host.walk_gfn(gfn) is None

    def test_system_2d_walks_compose_through_live_host_entries(self):
        """End-to-end composition: after real guest activity, every
        present guest translation's host frame resolves through the host
        table to itself (the 2D walk and the direct walk agree)."""
        system = build_system(
            "latr", machine="commodity-2s16c", use_virtualization=True
        )
        k = system.kernel
        proc, tasks = make_proc(system, n_threads=2)
        core0 = k.machine.core(0)

        def body():
            vr = yield from k.syscalls.mmap(tasks[0], core0, 12 * PAGE_SIZE)
            yield from k.syscalls.touch_pages(tasks[0], core0, vr, write=True)
            yield from k.syscalls.munmap(
                tasks[0], core0,
                type(vr)(vr.start, vr.start + 4 * PAGE_SIZE),
            )

        run_to_completion(system, k.scheduler.run_on(core0, tasks[0], body()))
        host = proc.mm.host_table
        assert host is not None
        checked = 0
        for _vpn, pte in proc.mm.page_table.all_entries():
            if pte.swapped:
                continue
            gfn = host.gfn_of_pfn.get(pte.pfn)
            assert gfn is not None, f"guest frame {pte.pfn} has no host entry"
            assert host.walk_gfn(gfn).pfn == pte.pfn
            assert host.generation_of_gfn[gfn] == k.frames.generation(pte.pfn)
            checked += 1
        assert checked > 0


# ---------------------------------------------------------------------------
# 2D walk-cost model
# ---------------------------------------------------------------------------


class TestWalkCost:
    @pytest.mark.parametrize(
        "guest,host",
        [(LEVELS, LEVELS), (LEVELS - 1, LEVELS), (LEVELS, LEVELS - 1), (2, 2)],
    )
    def test_step_count_and_charge_match_latency_table(self, guest, host):
        """steps(n, m) = n*m + n + m (each of the n guest refs pays an
        m-step host walk, plus the n guest refs themselves, plus the final
        m-step gPA->hPA translation of the data address); the *extra* over
        a native walk drops the n guest refs already charged as
        tlb_miss_walk_ns."""
        lat = LatencyModel()
        steps = lat.twod_walk_steps(guest, host)
        assert steps == guest * host + guest + host
        assert lat.twod_walk_extra(guest, host) == (
            (steps - guest) * lat.ept_walk_step_ns
        )

    def test_canonical_4_over_4_walk(self):
        lat = LatencyModel()
        assert lat.twod_walk_steps(LEVELS, LEVELS) == 24
        assert lat.twod_walk_extra(LEVELS, LEVELS) == 20 * lat.ept_walk_step_ns

    @pytest.mark.parametrize("huge", [False, True])
    def test_hw_walk_charges_huge_short_circuit(self, huge):
        """A guest hugepage walk skips one guest level, so its 2D extra is
        the (n-1, m) cost; pt_hw_walk must pick the right one per PTE."""
        from repro.mm.pte import make_huge_pte, make_present_pte

        system = build_system(
            "linux", machine="commodity-2s16c", use_virtualization=True
        )
        k = system.kernel
        proc, _tasks = make_proc(system, n_threads=1)
        mm = proc.mm
        lat = k.machine.latency
        if huge:
            mm.page_table.set_huge_pte(0, make_huge_pte(512))
            expected = lat.twod_walk_extra(LEVELS - 1, LEVELS)
        else:
            mm.page_table.set_pte(0, make_present_pte(7))
            expected = lat.twod_walk_extra(LEVELS, LEVELS)
        before = k.stats.counter("virt.walk.2d_ns").value
        pte, extra = k.pt_hw_walk(k.machine.core(0), mm, 0)
        assert pte is not None
        assert extra == expected
        assert k.stats.counter("virt.walk.2d_ns").value - before == expected

    def test_interconnect_invept_matches_hop_table(self):
        """The per-node INVEPT kick API composes the hop matrix with the
        per-hop latency row, like pt_walk_cost does for walks."""
        system = build_system("linux", machine="large-numa-8s120c")
        ic = system.machine.interconnect
        lat = system.machine.latency
        topo = system.machine.topology
        for dst in range(system.machine.spec.sockets):
            assert ic.ept_invept_cost(0, dst) == lat.ept_invept_vcpu(
                topo.socket_hops(0, dst)
            )
        # Same-node kicks still pay the local (0-hop) cost, never zero.
        assert ic.ept_invept_cost(2, 2) == lat.ept_invept_vcpu(0) > 0

    def test_flat_walk_charges_nothing(self):
        from repro.mm.pte import make_present_pte

        system = build_system("linux", machine="commodity-2s16c")
        k = system.kernel
        proc, _tasks = make_proc(system, n_threads=1)
        proc.mm.page_table.set_pte(0, make_present_pte(7))
        _pte, extra = k.pt_hw_walk(k.machine.core(0), proc.mm, 0)
        assert extra == 0
        assert not any(
            name.startswith("virt.") for name in k.stats.counters_snapshot()
        )


# ---------------------------------------------------------------------------
# Snapshot/restore round-trip
# ---------------------------------------------------------------------------


def _host_sig(kernel) -> str:
    mm = next(
        m for m in kernel.mm_registry.values() if m.host_table is not None
    )
    host = mm.host_table
    blob = pickle.dumps(
        (
            sorted(host.all_entries()),
            sorted(host.gfn_of_pfn.items()),
            sorted(host.generation_of_gfn.items()),
            host.next_gfn,
            host._count,
            host.table_pages_allocated,
        ),
        4,
    )
    return hashlib.blake2b(blob).hexdigest()


class TestSnapshotRoundTrip:
    def test_host_table_round_trips_hash_exact(self):
        system = build_system(
            "linux", machine="commodity-2s16c", use_virtualization=True
        )
        k = system.kernel
        proc, tasks = make_proc(system, n_threads=1)
        core0 = k.machine.core(0)

        def body():
            vr = yield from k.syscalls.mmap(tasks[0], core0, 8 * PAGE_SIZE)
            yield from k.syscalls.touch_pages(tasks[0], core0, vr, write=True)
            return vr

        vr = run_to_completion(system, k.scheduler.run_on(core0, tasks[0], body()))
        host = proc.mm.host_table
        assert host is not None and host.next_gfn > 0

        sig0 = _host_sig(k)
        snap = snapshot_kernel(k)

        def unmap():
            yield from k.syscalls.munmap(tasks[0], core0, vr)

        run_to_completion(system, k.scheduler.run_on(core0, tasks[0], unmap()))
        # The unmap freed frames, so host entries were detached.
        assert _host_sig(k) != sig0

        restore_kernel(k, snap)
        assert _host_sig(k) == sig0
        # Restore is identity-preserving and the world still runs.
        assert proc.mm.host_table is host
        run_to_completion(system, k.scheduler.run_on(core0, tasks[0], unmap()))
        assert _host_sig(k) != sig0


# ---------------------------------------------------------------------------
# Mutation detection (fuzzer leg; MC leg: repro ci virt-smoke)
# ---------------------------------------------------------------------------


class TestBrokenEptDetection:
    def test_monitor_flags_broken_ept_shootdown(self):
        plan = generate_plan(1, 60)
        result = run_one("latr", plan, mutate="broken_ept_shootdown")
        assert result.violations
        assert any(v.check == "ept_coherence" for v in result.violations)

    def test_healthy_virtualized_run_same_plan_is_clean(self):
        plan = generate_plan(1, 60)
        result = run_one("latr", plan, use_virtualization=True)
        assert result.violations == []
        assert result.errors == []

    def test_mc_audit_catches_broken_ept_shootdown(self):
        audit = run_mc(
            McConfig(
                scope=McScope(
                    cores=2, pages=2, ops=5, mutate="broken_ept_shootdown"
                )
            )
        )
        assert audit.verdict == "violation"
        ce = audit.counterexample
        assert ce is not None and ce.shrunk is not None
        assert any("ept_coherence" in f for f in ce.findings)
