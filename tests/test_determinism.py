"""Determinism regression: every experiment's table is byte-identical
across repeated ``--fast`` runs and across the sharded backend.

One serial pass establishes the reference renders; a second full pass
through ``run_many(..., jobs=2)`` must reproduce every table exactly.
That single comparison covers both claims at once -- rerun stability
(two independent runs agree) and backend independence (``--jobs 2``
equals ``--jobs 1``) -- without paying for a third pass of the suite.
"""

import pytest

from repro.experiments import available_experiments, run_experiment
from repro.experiments.runner import run_many


@pytest.fixture(scope="module")
def serial_tables():
    ids = available_experiments()
    return ids, {exp_id: run_experiment(exp_id, fast=True).render() for exp_id in ids}


def test_virt_experiment_is_registered(serial_tables):
    # The two-level-translation cell experiment must ride the determinism
    # sweep like every other registered experiment.
    ids, _tables = serial_tables
    assert "virt" in ids


def test_every_experiment_fast_rerun_and_jobs2_byte_identical(serial_tables):
    ids, tables = serial_tables
    runs = run_many(ids, fast=True, jobs=2)
    assert [run.exp_id for run in runs] == ids
    mismatched = [
        run.exp_id for run in runs if run.result.render() != tables[run.exp_id]
    ]
    assert not mismatched, f"non-deterministic tables: {mismatched}"


def test_render_carries_no_wall_clock(serial_tables):
    # Byte-identity is only meaningful if renders exclude timing; the CLI
    # prints wall clock on separate bracketed lines instead.
    _ids, tables = serial_tables
    for exp_id, text in tables.items():
        assert "done in" not in text, exp_id
