"""Unit tests for address arithmetic."""

import pytest

from repro.mm.addr import (
    PAGE_SIZE,
    VADDR_LIMIT,
    VirtRange,
    addr_of,
    page_align_down,
    page_align_up,
    vpn_of,
)


class TestAlignment:
    def test_align_down(self):
        assert page_align_down(0) == 0
        assert page_align_down(PAGE_SIZE - 1) == 0
        assert page_align_down(PAGE_SIZE) == PAGE_SIZE
        assert page_align_down(PAGE_SIZE + 1) == PAGE_SIZE

    def test_align_up(self):
        assert page_align_up(0) == 0
        assert page_align_up(1) == PAGE_SIZE
        assert page_align_up(PAGE_SIZE) == PAGE_SIZE

    def test_vpn_addr_roundtrip(self):
        assert vpn_of(addr_of(123)) == 123
        assert vpn_of(addr_of(123) + PAGE_SIZE - 1) == 123


class TestVirtRange:
    def test_basic_properties(self):
        vr = VirtRange(0x1000, 0x4000)
        assert vr.n_pages == 3
        assert vr.n_bytes == 0x3000
        assert vr.vpn_start == 1
        assert vr.vpn_end == 4
        assert list(vr.vpns()) == [1, 2, 3]

    def test_from_pages(self):
        vr = VirtRange.from_pages(10, 5)
        assert vr.start == 10 * PAGE_SIZE
        assert vr.n_pages == 5

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            VirtRange(1, PAGE_SIZE)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VirtRange(PAGE_SIZE, PAGE_SIZE)

    def test_beyond_canonical_rejected(self):
        with pytest.raises(ValueError):
            VirtRange(VADDR_LIMIT, VADDR_LIMIT + PAGE_SIZE)

    def test_contains(self):
        vr = VirtRange(0x1000, 0x3000)
        assert vr.contains(0x1000)
        assert vr.contains(0x2FFF)
        assert not vr.contains(0x3000)
        assert not vr.contains(0xFFF)

    def test_overlaps(self):
        a = VirtRange(0x1000, 0x3000)
        assert a.overlaps(VirtRange(0x2000, 0x4000))
        assert not a.overlaps(VirtRange(0x3000, 0x4000))
        assert a.overlaps(VirtRange(0x0000 + 0x1000, 0x2000))

    def test_intersect(self):
        a = VirtRange(0x1000, 0x4000)
        b = VirtRange(0x2000, 0x6000)
        assert a.intersect(b) == VirtRange(0x2000, 0x4000)
        with pytest.raises(ValueError):
            a.intersect(VirtRange(0x6000, 0x7000))
