"""Property-based tests of the paper's correctness invariants.

Random sequences of VM operations run against every mechanism; after each
batch the machine must satisfy:

* no TLB entry translates through a freed or recycled frame,
* frame refcounts equal the enumerable references,
* no VMA overlaps a lazily-freed range,
* after a quiescent period, no stale entries remain at all.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import build_system
from repro.kernel.invariants import (
    check_all,
    check_lazy_vrange_isolation,
    check_tlb_frame_safety,
)
from repro.mm.addr import PAGE_SIZE
from repro.sim.engine import MSEC

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

OPS = st.lists(
    st.tuples(
        st.sampled_from(["mmap", "munmap", "madvise", "touch", "mprotect", "tick"]),
        st.integers(min_value=0, max_value=3),   # acting core/thread
        st.integers(min_value=1, max_value=8),   # pages
        st.integers(min_value=0, max_value=7),   # which mapping
    ),
    min_size=5,
    max_size=40,
)


def _run_random_ops(mechanism, ops, queue_depth=None):
    kwargs = {"queue_depth": queue_depth} if queue_depth else {}
    system = build_system(mechanism, cores=4, **kwargs)
    kernel = system.kernel
    proc = kernel.create_process("fuzz")
    tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(4)]
    mappings = []
    violations = []

    writable = {}

    def body():
        from repro.mm.vma import Prot

        for op, who, pages, which in ops:
            task = tasks[who]
            core = kernel.machine.core(task.home_core_id)
            if op == "mmap":
                vrange = yield from kernel.syscalls.mmap(task, core, pages * PAGE_SIZE)
                mappings.append(vrange)
                writable[vrange] = True
            elif op == "munmap" and mappings:
                vrange = mappings.pop(which % len(mappings))
                yield from kernel.syscalls.munmap(task, core, vrange)
            elif op == "madvise" and mappings:
                vrange = mappings[which % len(mappings)]
                yield from kernel.syscalls.madvise_dontneed(task, core, vrange)
            elif op == "touch" and mappings:
                vrange = mappings[which % len(mappings)]
                yield from kernel.syscalls.touch_pages(
                    task, core, vrange, write=writable[vrange]
                )
            elif op == "mprotect" and mappings:
                vrange = mappings[which % len(mappings)]
                rw = which % 2 == 0
                new_prot = Prot.rw() if rw else Prot.ro()
                yield from kernel.syscalls.mprotect(task, core, vrange, new_prot)
                writable[vrange] = rw
            elif op == "tick":
                yield system.sim.timeout_signal(MSEC)
            # The safety invariant must hold after EVERY operation, not just
            # at quiescence (it is what makes the stale window harmless).
            violations.extend(check_tlb_frame_safety(kernel))
            violations.extend(check_lazy_vrange_isolation(kernel))

    driver = system.sim.spawn(body())
    system.sim.run(until=200 * MSEC)
    assert not driver.alive, "random-op driver stuck"
    return system, violations


class TestRandomOperationSafety:
    @SETTINGS
    @given(ops=OPS)
    def test_latr_invariants(self, ops):
        system, violations = _run_random_ops("latr", ops)
        assert violations == []
        # Quiescence: after a few ticks everything reconciles fully.
        system.sim.run(until=system.sim.now + 5 * MSEC)
        assert check_all(system.kernel) == []
        assert system.kernel.coherence.pending_lazy_operations() == 0

    @SETTINGS
    @given(ops=OPS)
    def test_latr_tiny_queue_fallback_invariants(self, ops):
        """Queue depth 1 forces the IPI fallback constantly; correctness
        must be unaffected (paper section 8)."""
        system, violations = _run_random_ops("latr", ops, queue_depth=1)
        assert violations == []
        system.sim.run(until=system.sim.now + 5 * MSEC)
        assert check_all(system.kernel) == []

    @SETTINGS
    @given(ops=OPS)
    def test_linux_invariants(self, ops):
        system, violations = _run_random_ops("linux", ops)
        assert violations == []
        system.sim.run(until=system.sim.now + 5 * MSEC)
        assert check_all(system.kernel) == []

    @SETTINGS
    @given(ops=OPS)
    def test_abis_invariants(self, ops):
        system, violations = _run_random_ops("abis", ops)
        assert violations == []
        system.sim.run(until=system.sim.now + 5 * MSEC)
        assert check_all(system.kernel) == []

    @SETTINGS
    @given(ops=OPS)
    def test_barrelfish_invariants(self, ops):
        system, violations = _run_random_ops("barrelfish", ops)
        assert violations == []
        system.sim.run(until=system.sim.now + 5 * MSEC)
        assert check_all(system.kernel) == []


class TestBoundedStaleness:
    @SETTINGS
    @given(
        pages=st.integers(min_value=1, max_value=16),
        sharers=st.integers(min_value=2, max_value=4),
    )
    def test_stale_entries_die_within_two_ticks(self, pages, sharers):
        system = build_system("latr", cores=4)
        kernel = system.kernel
        proc = kernel.create_process("p")
        tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(4)]
        box = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, pages * PAGE_SIZE)
            for task in tasks[:sharers]:
                core = kernel.machine.core(task.home_core_id)
                yield from kernel.syscalls.touch_pages(task, core, vrange, write=True)
            yield from kernel.syscalls.munmap(t0, c0, vrange)
            box["vrange"] = vrange

        system.sim.spawn(body())
        system.sim.run(until=1 * MSEC)
        system.sim.run(until=system.sim.now + 2 * MSEC)
        from repro.kernel.invariants import check_no_stale_entries_for

        assert check_no_stale_entries_for(kernel, proc.mm, box["vrange"]) == []
