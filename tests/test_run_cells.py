"""The run-cell model and the sharded multi-process experiment backend."""

from __future__ import annotations

import pickle

import pytest

from repro.experiments import (
    CellExecutionError,
    ExperimentResult,
    RunCell,
    available_experiments,
    execute_experiment,
    experiment_cells,
    run_experiment,
    run_many,
)
from repro.experiments.runner import execute_cell, run_cells

import helpers


class TestRunCellModel:
    def test_every_experiment_enumerates_picklable_cells(self):
        """Every registered experiment's fast-mode cells must cross a
        process boundary: picklable, resolvable, uniquely identified."""
        for exp_id in available_experiments():
            cells = experiment_cells(exp_id, fast=True)
            assert cells, exp_id
            assert len({cell.cell_id for cell in cells}) == len(cells), exp_id
            for cell in cells:
                assert cell.exp_id == exp_id
                assert cell.fast is True
                restored = pickle.loads(pickle.dumps(cell))
                assert restored == cell
                assert callable(restored.resolve())

    def test_sequential_experiments_fall_back_to_a_single_cell(self):
        for exp_id in ("fig2", "fig3", "fuzz-smoke", "fuzz-mutation", "model-check", "abl-sweep"):
            cells = experiment_cells(exp_id, fast=True)
            assert len(cells) == 1, exp_id

    def test_sweeps_decompose_into_many_cells(self):
        assert len(experiment_cells("fig6", fast=True)) == 8  # 4 core counts x 2 mechs
        assert len(experiment_cells("fig9", fast=True)) == 9  # 3 core counts x 3 mechs
        assert len(experiment_cells("mech-compare", fast=True)) == 6

    def test_bad_entry_point_spelling_rejected(self):
        cell = RunCell(exp_id="x", cell_id="c", fn="no_colon_here")
        with pytest.raises(ValueError):
            cell.run()


class TestInlineExecution:
    def test_jobs1_runs_in_this_process(self):
        helpers.MARKER_CALLS.clear()
        cell = RunCell(exp_id="x", cell_id="c", fn="helpers:marker_cell", params={"tag": "t1"})
        outcomes = run_cells([cell], jobs=1)
        assert helpers.MARKER_CALLS == ["t1"]
        assert outcomes[0].value == "t1"
        assert outcomes[0].wall_s >= 0.0

    def test_outcome_counts_simulator_events(self):
        cell = experiment_cells("fig6", fast=True)[0]
        outcome = execute_cell(cell)
        assert outcome.events > 0
        assert outcome.cell is cell


class TestShardedExecution:
    CHEAP_IDS = ["fig6", "memoverhead", "abl-flushthresh"]

    def test_serial_and_parallel_tables_byte_identical(self):
        """The acceptance gate: --jobs 4 renders byte-identical tables to
        --jobs 1 across (at least) three experiment ids."""
        serial = run_many(self.CHEAP_IDS, fast=True, jobs=1)
        parallel = run_many(self.CHEAP_IDS, fast=True, jobs=4)
        for s_run, p_run in zip(serial, parallel):
            assert s_run.result.render() == p_run.result.render(), s_run.exp_id
            assert s_run.result.to_csv() == p_run.result.to_csv(), s_run.exp_id

    def test_parallel_keeps_workers_out_of_this_process(self):
        helpers.MARKER_CALLS.clear()
        cells = [
            RunCell(exp_id="x", cell_id=f"c{i}", fn="helpers:marker_cell", params={"tag": f"t{i}"})
            for i in range(3)
        ]
        outcomes = run_cells(cells, jobs=2)
        # Values come back in cell order; the parent process never ran them.
        assert [o.value for o in outcomes] == ["t0", "t1", "t2"]
        assert helpers.MARKER_CALLS == []

    def test_worker_failure_surfaces_the_cell(self):
        cells = [
            RunCell(exp_id="x", cell_id="ok", fn="helpers:marker_cell", params={"tag": "a"}),
            RunCell(exp_id="x", cell_id="bad", fn="helpers:crash_cell", params={"message": "kapow"}),
        ]
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells(cells, jobs=2)
        assert "x/bad" in str(excinfo.value)
        assert "kapow" in str(excinfo.value)
        assert excinfo.value.cell.cell_id == "bad"

    def test_inline_failure_also_wrapped_in_cell_order(self):
        cell = RunCell(exp_id="x", cell_id="bad", fn="helpers:crash_cell")
        with pytest.raises(ValueError):
            run_cells([cell], jobs=1)

    def test_execute_experiment_reports_per_cell_timing(self):
        run = execute_experiment("fig6", fast=True, jobs=2)
        timings = run.cell_timings()
        assert len(timings) == 8
        assert all(wall >= 0.0 for _cell_id, wall in timings)
        assert run.cell_seconds == pytest.approx(sum(w for _c, w in timings))
        assert run.events > 0

    def test_single_id_parallel_equals_serial(self):
        serial = run_experiment("fig6", fast=True, jobs=1)
        parallel = run_experiment("fig6", fast=True, jobs=2)
        assert serial.render() == parallel.render()


class TestResultRoundTrip:
    def test_to_json_from_json_renders_identically(self):
        result = ExperimentResult(
            exp_id="x",
            title="demo",
            headers=("a", "b", "c"),
            rows=[(1, 2.5, "s"), ("ragged",), (3, 4, 5, 6)],
            paper_expectation="expected",
            notes="note",
        )
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.render() == result.render()
        assert restored.to_csv() == result.to_csv()
        assert restored.exp_id == "x"

    def test_round_trip_preserves_numeric_types(self):
        result = ExperimentResult("x", "t", ("i", "f"), [(7, 7.0)])
        restored = ExperimentResult.from_json(result.to_json())
        (row,) = restored.rows
        assert isinstance(row[0], int) and isinstance(row[1], float)

    def test_real_experiment_round_trips(self):
        result = run_experiment("tab3", fast=True)
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.render() == result.render()


class TestCliJobs:
    def test_cli_jobs_flag_byte_identical_tables(self, tmp_path, capsys):
        from repro.cli import main

        serial_out = tmp_path / "serial.txt"
        parallel_out = tmp_path / "parallel.txt"
        assert main(["fig6", "--fast", "-o", str(serial_out)]) == 0
        assert main(["fig6", "--fast", "--jobs", "2", "-o", str(parallel_out)]) == 0
        assert serial_out.read_text() == parallel_out.read_text()

    def test_cli_all_parallel_unknown_id_still_errors(self, capsys):
        from repro.cli import main

        assert main(["nope", "--jobs", "2"]) == 2
