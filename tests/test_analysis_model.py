"""The analytical model must agree with the simulator (and the paper)."""

import pytest

from repro.analysis.model import (
    apache_throughput_bound,
    dominant_term,
    latr_free_critical_path,
    latr_memory_overhead_bytes,
    latr_reclamation_bound_ns,
    latr_staleness_bound_ns,
    linux_shootdown,
    migration_shootdown_share,
)
from repro.hw.spec import COMMODITY_2S16C, LARGE_NUMA_8S120C
from repro.sim.engine import MSEC
from repro.workloads.microbench import MicrobenchConfig, MunmapMicrobench


class TestModelVsSimulator:
    @pytest.mark.parametrize("cores", [4, 8, 16])
    def test_linux_shootdown_matches_sim(self, cores):
        spec = COMMODITY_2S16C.with_cores(cores)
        predicted = linux_shootdown(spec, pages=1).total_ns
        measured = (
            MunmapMicrobench(MicrobenchConfig(cores=cores, reps=15))
            .run("linux")
            .metric("shootdown_us")
            * 1000
        )
        assert predicted == pytest.approx(measured, rel=0.25)

    def test_linux_shootdown_matches_sim_large_numa(self):
        predicted = linux_shootdown(LARGE_NUMA_8S120C, pages=1).total_ns
        measured = (
            MunmapMicrobench(
                MicrobenchConfig(machine="large-numa-8s120c", cores=120, reps=8)
            )
            .run("linux")
            .metric("shootdown_us")
            * 1000
        )
        assert predicted == pytest.approx(measured, rel=0.25)

    def test_latr_critical_path_matches_sim(self):
        predicted = latr_free_critical_path(pages=1, spec=COMMODITY_2S16C)
        measured = (
            MunmapMicrobench(MicrobenchConfig(cores=16, reps=15))
            .run("latr")
            .metric("shootdown_us")
            * 1000
        )
        assert predicted == pytest.approx(measured, rel=0.05)


class TestPaperArithmetic:
    def test_shootdown_bands(self):
        """Section 1: ~6 us at 16 cores, up to ~80 us at 120 cores."""
        small = linux_shootdown(COMMODITY_2S16C).total_ns / 1000
        large = linux_shootdown(LARGE_NUMA_8S120C).total_ns / 1000
        assert 4 < small < 8
        assert 55 < large < 110

    def test_migration_share_band(self):
        """Sections 2.1/6.3: 5.8% at 1 page, ~21.1% at 512 pages."""
        one = migration_shootdown_share(1, COMMODITY_2S16C)
        many = migration_shootdown_share(512, COMMODITY_2S16C)
        assert 0.03 < one < 0.09
        assert 0.12 < many < 0.30
        assert many > one

    def test_staleness_and_reclamation_bounds(self):
        assert latr_staleness_bound_ns(COMMODITY_2S16C) == MSEC
        assert latr_reclamation_bound_ns(COMMODITY_2S16C) == 2 * MSEC

    def test_memory_overhead_bound(self):
        """Section 6.4: 250k x 512-page munmaps/sec would park ~21 MB...
        at the paper's actually-achievable rate of ~5k ops/s."""
        bytes_held = latr_memory_overhead_bytes(
            munmap_rate_per_sec=5_000, pages_per_munmap=512, spec=COMMODITY_2S16C
        )
        assert bytes_held / (1024 * 1024) == pytest.approx(20, rel=0.3)

    def test_dominant_term_shifts_with_scale(self):
        """Few targets: ACK wait dominates; 119 targets: send occupancy."""
        small = linux_shootdown(COMMODITY_2S16C.with_cores(4))
        large = linux_shootdown(LARGE_NUMA_8S120C)
        assert dominant_term(small) == "ACK wait"
        assert dominant_term(large) == "IPI send occupancy"


class TestApacheBound:
    def test_regimes(self):
        # Low cores: CPU binds; high cores with a fat critical section:
        # the lock binds (Figure 1's flatline).
        low = apache_throughput_bound(2, 59_000, 10_000, 12_000)
        assert low.binding == "cpu"
        high = apache_throughput_bound(12, 59_000, 10_000, 12_000)
        assert high.binding == "mmap_sem"
        assert high.predicted_rps == pytest.approx(1e9 / 12_000)

    def test_latr_moves_the_knee(self):
        linux = apache_throughput_bound(12, 59_000, 10_000, 12_000)
        latr = apache_throughput_bound(12, 59_000, 10_000, 6_200)
        assert latr.predicted_rps > 1.5 * linux.predicted_rps
