"""Engine stress and corner cases beyond the basic unit tests."""

import pytest

from repro.sim.engine import AllOf, SimulationError, Simulator, Timeout
from repro.sim.resources import Channel, Lock


class TestEventStorm:
    def test_many_events_stay_ordered(self):
        sim = Simulator()
        seen = []
        # Interleaved schedule orders, all times distinct.
        times = [((i * 7919) % 4001) + 1 for i in range(4001)]
        for t in times:
            sim.at(t, seen.append, t)
        sim.run()
        assert seen == sorted(times)
        assert len(seen) == 4001

    def test_cancellation_storm(self):
        sim = Simulator()
        fired = []
        handles = [sim.after(i + 1, fired.append, i) for i in range(1000)]
        for handle in handles[::2]:
            handle.cancel()
        sim.run()
        assert len(fired) == 500
        assert all(i % 2 == 1 for i in fired)

    def test_deep_process_chain(self):
        sim = Simulator()

        def link(depth):
            if depth == 0:
                yield Timeout(1)
                return 0
            value = yield sim.spawn(link(depth - 1))
            return value + 1

        proc = sim.spawn(link(150))
        sim.run()
        assert proc.value == 150

    def test_wide_allof(self):
        sim = Simulator()

        def child(i):
            yield Timeout(i + 1)
            return i

        def parent():
            values = yield AllOf([sim.spawn(child(i)) for i in range(200)])
            return sum(values)

        proc = sim.spawn(parent())
        sim.run()
        assert proc.value == sum(range(200))
        assert sim.now == 200


class TestLockStress:
    def test_hundred_contenders_fifo_and_exclusive(self):
        sim = Simulator()
        lock = Lock(sim)
        order = []
        inside = [0]

        def contender(i):
            yield Timeout(i)  # staggered arrival
            yield lock.acquire()
            inside[0] += 1
            assert inside[0] == 1
            order.append(i)
            yield Timeout(5)
            inside[0] -= 1
            lock.release()

        for i in range(100):
            sim.spawn(contender(i))
        sim.run()
        assert order == list(range(100))

    def test_channel_producer_consumer_conservation(self):
        sim = Simulator()
        chan = Channel(sim)
        consumed = []

        def producer():
            for i in range(500):
                chan.put(i)
                yield Timeout(1)

        def consumer():
            for _ in range(500):
                value = yield chan.get()
                consumed.append(value)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert consumed == list(range(500))


class TestClockDiscipline:
    def test_callbacks_never_see_time_regress(self):
        sim = Simulator()
        last = [-1]

        def check():
            assert sim.now >= last[0]
            last[0] = sim.now

        import random

        rng = random.Random(3)
        t = 0
        for _ in range(500):
            t += rng.randrange(0, 5)  # includes same-time events
            sim.at(t, check)
        sim.run()

    def test_zero_delay_runs_after_current_callback(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.after(0, order.append, "nested-zero")
            order.append("still-first")

        sim.after(1, first)
        sim.after(1, order.append, "second")
        sim.run()
        assert order == ["first", "still-first", "second", "nested-zero"]
