"""The coherence fuzzer's own test suite: continuous invariant checking,
mutation detection (the harness must catch known-bad LATR variants),
differential agreement across mechanisms, and the shrinker."""

from __future__ import annotations

import pytest
from helpers import make_proc, run_to_completion

from repro import build_system
from repro.mm.addr import PAGE_SIZE
from repro.verify import (
    MUTATIONS,
    FuzzConfig,
    FuzzPlan,
    InvariantMonitor,
    Op,
    diff_snapshots,
    generate_plan,
    mutation_spec,
    run_fuzz,
    run_one,
    shrink_plan,
)
from repro.verify.plan import SchedulePlan


def _mixed_plan(seed: int = 3, reps: int = 4) -> FuzzPlan:
    """A deterministic mixed munmap+migration workload (the ISSUE's
    continuous-checking scenario), plus swaps to widen coverage."""
    ops = [Op("mmap", pages=12, core=0, proc=0, write=True, tag="m0"),
           Op("mmap", pages=40, core=1, proc=1, write=True, tag="m1")]
    for i in range(reps):
        ops += [
            Op("touch", region=i, pages=6, core=i % 4, proc=0, write=True, tag=f"w{i}"),
            Op("migrate", region=i, pages=6, core=2, proc=0),
            Op("mmap", pages=8, core=3, proc=1, write=True, tag=f"n{i}"),
            Op("swap", region=i + 1, pages=5, core=1, proc=1),
            Op("munmap", region=i, core=0, proc=0),
            Op("madvise", region=0, core=3, proc=1),
        ]
    schedule = SchedulePlan(
        tick_offsets={0: 0, 1: 137_000, 2: 512_000, 3: 891_000},
        ctx_switch_gaps={c: (430_000, 1_350_000, 760_000) for c in range(4)},
        reclaim_delay_ticks=2,
        queue_depth=8,
    )
    return FuzzPlan(seed=seed, n_cores=4, n_procs=2, ops=tuple(ops), schedule=schedule)


class TestInvariantMonitor:
    def test_install_hooks_pte_observer_and_detach_unhooks(self):
        system = build_system("latr", cores=2)
        monitor = InvariantMonitor.install(system.kernel)
        assert system.kernel.invariant_monitor is monitor
        proc, tasks = make_proc(system)
        assert proc.mm.page_table.observer is not None

        def body():
            vr = yield from system.kernel.syscalls.mmap(
                tasks[0], system.kernel.machine.core(0), 4 * PAGE_SIZE
            )
            yield from system.kernel.syscalls.touch_pages(
                tasks[0], system.kernel.machine.core(0), vr, write=True
            )

        run_to_completion(system, body())
        assert monitor.notifications > 0
        assert monitor.checks_run > 0
        assert monitor.healthy
        monitor.detach()
        assert system.kernel.invariant_monitor is None
        assert proc.mm.page_table.observer is None

    def test_unknown_check_rejected(self):
        system = build_system("latr", cores=2)
        with pytest.raises(ValueError, match="unknown continuous check"):
            InvariantMonitor.install(system.kernel, checks=("frame_refcounts",))

    def test_stride_thins_check_points(self):
        system = build_system("latr", cores=2)
        monitor = InvariantMonitor.install(system.kernel, stride=10)
        for _ in range(25):
            monitor.notify("test")
        assert monitor.checks_run == 3  # notifications 1, 11, 21

    def test_quiescent_check_includes_refcounts(self):
        system = build_system("latr", cores=2)
        monitor = InvariantMonitor.install(system.kernel)
        assert monitor.check_quiescent() == []
        # Corrupt refcount accounting (a PTE referencing a frame the
        # allocator thinks is free); only the quiescent pass sees it.
        from repro.mm.pte import make_present_pte

        proc, _tasks = make_proc(system)
        proc.mm.page_table.set_pte(0x1000, make_present_pte(7))
        assert monitor.check_quiescent() != []
        assert any(v.check == "frame_refcounts" for v in monitor.violations)


class TestContinuousChecking:
    """ISSUE satellite: a mixed munmap+migration workload runs with the
    monitor attached and zero violations, under every mechanism."""

    @pytest.mark.parametrize("mechanism", ["linux", "latr", "abis", "didi", "unitd"])
    def test_mixed_workload_zero_violations(self, mechanism):
        result = run_one(mechanism, _mixed_plan())
        assert result.errors == []
        assert result.violations == []
        assert result.ops_executed == len(_mixed_plan().ops)
        # The monitor actually ran, at many instants.
        assert result.checks_run > 100

    def test_latr_checked_at_sweep_and_reclaim_points(self):
        result = run_one("latr", _mixed_plan(), with_tracer=True)
        assert result.violations == []
        counts = result.tracer.counts()
        assert counts.get("latr.sweep", 0) > 0
        assert counts.get("latr.reclaim", 0) > 0


class TestMutationDetection:
    """The harness must catch every injected bug (proof it has teeth).

    Safety mutations must trip the invariant monitor; liveness/engine
    mutations must trip the progress guards or the differential against
    the synchronous baseline.
    """

    @pytest.mark.parametrize("mutation", MUTATIONS)
    def test_mutation_caught(self, mutation):
        spec = mutation_spec(mutation)
        plan = generate_plan(1, 60)
        result = run_one("latr", plan, mutate=mutation)
        if spec.detected_by == "monitor":
            assert result.violations, f"mutation {mutation} was not detected"
            expected_check = {
                "broken_replica": "replica_coherence",
                "broken_ept_shootdown": "ept_coherence",
            }.get(mutation, "tlb_frame_safety")
            assert any(v.check == expected_check for v in result.violations)
            return
        findings = list(result.errors)
        if result.snapshot is not None:
            base = run_one("linux", plan)
            findings += diff_snapshots(base.snapshot, result.snapshot)
        findings += [str(v) for v in result.violations]
        assert findings, f"mutation {mutation} was not detected"

    def test_healthy_latr_is_clean_on_same_plan(self):
        plan = generate_plan(1, 60)
        result = run_one("latr", plan)
        assert result.violations == []
        assert result.errors == []


class TestDifferential:
    """End state must match synchronous Linux on identical op sequences."""

    def test_latr_matches_linux_on_20_seeded_schedules(self):
        for seed in range(1, 21):
            plan = generate_plan(seed, 25)
            base = run_one("linux", plan)
            assert base.errors == [] and base.violations == [], f"seed {seed}"
            res = run_one("latr", plan)
            assert res.errors == [] and res.violations == [], f"seed {seed}"
            assert diff_snapshots(base.snapshot, res.snapshot) == [], f"seed {seed}"

    @pytest.mark.parametrize("mechanism", ["abis", "didi", "unitd"])
    def test_other_mechanisms_match_linux(self, mechanism):
        for seed in (1, 5, 9):
            plan = generate_plan(seed, 30)
            base = run_one("linux", plan)
            res = run_one(mechanism, plan)
            assert res.errors == [] and res.violations == []
            assert diff_snapshots(base.snapshot, res.snapshot) == [], f"seed {seed}"

    def test_diff_snapshots_reports_differences(self):
        plan = generate_plan(2, 20)
        snap = run_one("linux", plan).snapshot
        altered = dict(snap)
        altered["swap_slots"] = snap["swap_slots"] + 1
        assert any("swap_slots" in d for d in diff_snapshots(snap, altered))


class TestShrinking:
    def test_mutated_campaign_shrinks_and_dumps_trace(self):
        report = run_fuzz(
            FuzzConfig(seed=1, n_ops=40, mutate="reclaim_delay_zero", shrink_budget=30)
        )
        assert not report.ok
        assert "latr" in report.failures
        assert report.shrunk_plan is not None
        assert len(report.shrunk_plan.ops) < len(report.plan.ops)
        # The minimal plan still reproduces.
        re_run = run_one("latr", report.shrunk_plan, mutate="reclaim_delay_zero")
        assert re_run.violations
        assert report.trace_dump
        assert "PASS" not in report.render()

    def test_shrink_plan_reaches_known_minimal_core(self):
        plan = generate_plan(7, 12)

        def fails(p):
            # Pretend the failure needs an mmap followed (eventually) by a swap.
            kinds = [op.kind for op in p.ops]
            return "mmap" in kinds and "swap" in kinds[kinds.index("mmap"):]

        if not fails(plan):
            plan = plan.with_ops(plan.ops + (Op("swap"),))
        shrunk, runs = shrink_plan(plan, fails, budget=60)
        assert fails(shrunk)
        assert len(shrunk.ops) == 2
        assert runs <= 60


class TestPlanGeneration:
    def test_same_seed_same_plan(self):
        assert generate_plan(11, 50) == generate_plan(11, 50)

    def test_different_seeds_differ(self):
        assert generate_plan(11, 50) != generate_plan(12, 50)

    def test_schedule_knobs_within_ranges(self):
        plan = generate_plan(3, 30)
        assert plan.schedule.queue_depth in (3, 8, 64)
        assert plan.schedule.reclaim_delay_ticks in (1, 2, 3)
        assert all(0 <= off < 1_000_000 for off in plan.schedule.tick_offsets.values())
        assert set(plan.schedule.ctx_switch_gaps) == {0, 1, 2, 3}


class TestFuzzSmoke:
    """Fast end-to-end campaign for tier-1 (the CLI's `fuzz` path)."""

    def test_fast_campaign_passes(self):
        report = run_fuzz(FuzzConfig(seed=1, n_ops=40, shrink=False))
        assert report.ok, report.render()
        assert set(report.results) == {"linux", "latr", "abis", "didi", "unitd"}
        text = report.render()
        assert "PASS" in text
