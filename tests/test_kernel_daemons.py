"""AutoNUMA, swap, KSM, and compaction end-to-end behaviour."""

import pytest

from repro import build_system
from repro.kernel.autonuma import AutoNuma
from repro.kernel.compaction import Compactor
from repro.kernel.invariants import check_all, check_tlb_frame_safety
from repro.kernel.ksm import KsmDaemon
from repro.kernel.swapd import SwapDevice
from repro.mm.addr import PAGE_SIZE
from repro.sim.engine import MSEC

from helpers import make_proc, run_to_completion, drain


class TestAutoNuma:
    def _system_with_remote_access(self, mech):
        """Pages allocated on node 0, then accessed repeatedly from node 1."""
        system = build_system(mech, cores=16)
        kernel = system.kernel
        AutoNuma.install(kernel, scan_period_ns=2 * MSEC, scan_pages_per_round=64)
        proc, tasks = make_proc(system)
        kernel.autonuma.register(proc)
        state = {}

        def setup():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, 32 * PAGE_SIZE)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
            state["vrange"] = vrange

        run_to_completion(system, setup())
        return system, kernel, proc, tasks, state

    @pytest.mark.parametrize("mech", ["linux", "latr"])
    def test_pages_migrate_to_accessing_node(self, mech):
        system, kernel, proc, tasks, state = self._system_with_remote_access(mech)
        vrange = state["vrange"]
        remote_task = tasks[8]  # socket 1
        remote_core = kernel.machine.core(8)

        def hammer():
            for _ in range(40):
                yield from kernel.syscalls.touch_pages(remote_task, remote_core, vrange)
                yield from remote_core.execute(500_000)

        system.sim.spawn(hammer())
        system.sim.run(until=system.sim.now + 120 * MSEC)
        assert kernel.stats.counter("numa.migrations").value > 0
        migrated_pfn = proc.mm.page_table.walk(vrange.vpn_start)
        # At least the first page should now live on node 1.
        nodes = {
            kernel.frames.node_of(pte.pfn)
            for _vpn, pte in proc.mm.page_table.entries_in_range(vrange)
            if not pte.swapped
        }
        assert 1 in nodes
        assert check_tlb_frame_safety(kernel) == []

    def test_linux_pays_ipis_latr_does_not(self):
        counts = {}
        for mech in ("linux", "latr"):
            system, kernel, proc, tasks, state = self._system_with_remote_access(mech)
            vrange = state["vrange"]
            remote_task, remote_core = tasks[8], kernel.machine.core(8)

            def hammer():
                for _ in range(20):
                    yield from kernel.syscalls.touch_pages(remote_task, remote_core, vrange)
                    yield from remote_core.execute(500_000)

            system.sim.spawn(hammer())
            system.sim.run(until=system.sim.now + 60 * MSEC)
            counts[mech] = {
                "ipis": system.stats.counter("ipi.sent").value,
                "samples": system.stats.counter("numa.pages_sampled").value,
            }
        assert counts["linux"]["samples"] > 0
        assert counts["latr"]["samples"] > 0
        assert counts["linux"]["ipis"] > 0
        assert counts["latr"]["ipis"] == 0

    def test_no_migration_for_local_access(self):
        system, kernel, proc, tasks, state = self._system_with_remote_access("latr")
        vrange = state["vrange"]
        local_task, local_core = tasks[1], kernel.machine.core(1)  # same socket

        def hammer():
            for _ in range(30):
                yield from kernel.syscalls.touch_pages(local_task, local_core, vrange)
                yield from local_core.execute(500_000)

        system.sim.spawn(hammer())
        system.sim.run(until=system.sim.now + 80 * MSEC)
        assert kernel.stats.counter("numa.hint_faults").value > 0
        assert kernel.stats.counter("numa.migrations").value == 0


class TestSwap:
    @pytest.mark.parametrize("mech", ["linux", "latr"])
    def test_swap_out_and_refault(self, mech):
        system = build_system(mech, cores=4)
        kernel = system.kernel
        SwapDevice.install(kernel)
        proc, tasks = make_proc(system)
        out = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, 4 * PAGE_SIZE)
            for t in tasks:
                core = kernel.machine.core(t.home_core_id)
                yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
            count = yield from kernel.swap.swap_out_pages(t0, c0, vrange)
            out["swapped"] = count
            out["vrange"] = vrange

        run_to_completion(system, body())
        assert out["swapped"] == 4
        drain(system, ms=5)  # let lazy unmap + writeback finish
        assert kernel.stats.counter("swap.writes").value == 4
        vrange = out["vrange"]
        assert proc.mm.page_table.walk(vrange.vpn_start).swapped
        assert check_tlb_frame_safety(kernel) == []

        def refault():
            t0, c0 = tasks[0], kernel.machine.core(0)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)

        run_to_completion(system, refault())
        assert kernel.stats.counter("swap.ins").value == 4
        assert not proc.mm.page_table.walk(vrange.vpn_start).swapped
        drain(system, ms=5)
        assert check_all(kernel) == []

    def test_latr_swap_defers_frame_free_until_invalidation(self):
        system = build_system("latr", cores=4)
        kernel = system.kernel
        SwapDevice.install(kernel)
        proc, tasks = make_proc(system)
        out = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
            for t in tasks:
                core = kernel.machine.core(t.home_core_id)
                yield from kernel.syscalls.touch_pages(t, core, vrange)
            out["pfn"] = proc.mm.page_table.walk(vrange.vpn_start).pfn
            yield from kernel.swap.swap_out_pages(t0, c0, vrange)

        run_to_completion(system, body())
        # Immediately after the (lazy) unmap posted, the frame must survive:
        # remote TLBs still reference it.
        assert kernel.frames.is_allocated(out["pfn"])
        drain(system, ms=5)
        assert not kernel.frames.is_allocated(out["pfn"])
        assert check_tlb_frame_safety(kernel) == []


class TestKsm:
    @pytest.mark.parametrize("mech", ["linux", "latr"])
    def test_identical_pages_merge(self, mech):
        system = build_system(mech, cores=2)
        kernel = system.kernel
        ksm = KsmDaemon.install(kernel, scan_period_ns=5 * MSEC)
        proc, tasks = make_proc(system)
        ksm.register(proc)
        out = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, 4 * PAGE_SIZE)
            for i in range(4):
                yield from kernel.syscalls.write_with_content(
                    t0, c0, vrange.start + i * PAGE_SIZE, tag="zeros"
                )
            out["vrange"] = vrange

        run_to_completion(system, body())
        system.sim.run(until=system.sim.now + 30 * MSEC)
        assert kernel.stats.counter("ksm.pages_merged").value == 3
        pfns = {
            pte.pfn
            for _vpn, pte in proc.mm.page_table.entries_in_range(out["vrange"])
        }
        assert len(pfns) == 1
        canonical = pfns.pop()
        assert kernel.frames.refcount(canonical) == 4
        assert check_all(kernel) == []

    def test_write_after_merge_cow_breaks(self):
        system = build_system("latr", cores=2)
        kernel = system.kernel
        ksm = KsmDaemon.install(kernel, scan_period_ns=5 * MSEC)
        proc, tasks = make_proc(system)
        ksm.register(proc)
        out = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, 2 * PAGE_SIZE)
            for i in range(2):
                yield from kernel.syscalls.write_with_content(
                    t0, c0, vrange.start + i * PAGE_SIZE, tag="same"
                )
            out["vrange"] = vrange

        run_to_completion(system, body())
        system.sim.run(until=system.sim.now + 30 * MSEC)
        assert kernel.stats.counter("ksm.pages_merged").value == 1
        vrange = out["vrange"]

        def write_one():
            t0, c0 = tasks[0], kernel.machine.core(0)
            # New content: the CoW break must give page 0 a private copy,
            # and the changed tag prevents ksmd from re-merging it.
            yield from kernel.syscalls.write_with_content(
                t0, c0, vrange.start, tag="changed"
            )

        run_to_completion(system, write_one())
        pte0 = proc.mm.page_table.walk(vrange.vpn_start)
        pte1 = proc.mm.page_table.walk(vrange.vpn_start + 1)
        assert pte0.pfn != pte1.pfn  # diverged again
        assert pte0.writable
        drain(system, ms=5)
        assert check_all(kernel) == []

    def test_different_content_not_merged(self):
        system = build_system("latr", cores=2)
        kernel = system.kernel
        ksm = KsmDaemon.install(kernel, scan_period_ns=5 * MSEC)
        proc, tasks = make_proc(system)
        ksm.register(proc)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, 2 * PAGE_SIZE)
            yield from kernel.syscalls.write_with_content(t0, c0, vrange.start, tag="a")
            yield from kernel.syscalls.write_with_content(
                t0, c0, vrange.start + PAGE_SIZE, tag="b"
            )

        run_to_completion(system, body())
        system.sim.run(until=system.sim.now + 30 * MSEC)
        assert kernel.stats.counter("ksm.pages_merged").value == 0


class TestCompaction:
    @pytest.mark.parametrize("mech", ["linux", "latr"])
    def test_compaction_relocates_pages(self, mech):
        system = build_system(mech, cores=2)
        kernel = system.kernel
        compactor = Compactor.install(kernel)
        proc, tasks = make_proc(system)
        compactor.register(proc)
        out = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, 4 * PAGE_SIZE)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
            out["before"] = {
                vpn: pte.pfn
                for vpn, pte in proc.mm.page_table.entries_in_range(vrange)
            }
            out["vrange"] = vrange
            moved = yield from kernel.compactor.compact_node(0, max_pages=4)
            out["moved"] = moved

        run_to_completion(system, body())
        drain(system, ms=5)
        assert out["moved"] == 4
        after = {
            vpn: pte.pfn
            for vpn, pte in proc.mm.page_table.entries_in_range(out["vrange"])
        }
        assert set(after) == set(out["before"])
        assert all(after[vpn] != out["before"][vpn] for vpn in after)
        assert check_all(kernel) == []
        assert check_tlb_frame_safety(kernel) == []


class TestKsmCrossProcess:
    def test_merge_across_processes(self):
        """KSM deduplicates identical pages owned by different processes;
        the duplicate's frame is freed only after the lazy invalidation."""
        system = build_system("latr", cores=2)
        kernel = system.kernel
        ksm = KsmDaemon.install(kernel, scan_period_ns=5 * MSEC)
        proc_a, tasks_a = make_proc(system, n_threads=1, name="a")
        proc_b = kernel.create_process("b")
        task_b = kernel.spawn_thread(proc_b, "t0", 1)
        ksm.register(proc_a)
        ksm.register(proc_b)
        box = {}

        def body():
            ta, ca = tasks_a[0], kernel.machine.core(0)
            cb = kernel.machine.core(1)
            ra = yield from kernel.syscalls.mmap(ta, ca, PAGE_SIZE)
            rb = yield from kernel.syscalls.mmap(task_b, cb, PAGE_SIZE)
            yield from kernel.syscalls.write_with_content(ta, ca, ra.start, tag="dup")
            yield from kernel.syscalls.write_with_content(task_b, cb, rb.start, tag="dup")
            box["ra"], box["rb"] = ra, rb

        run_to_completion(system, body())
        system.sim.run(until=system.sim.now + 30 * MSEC)
        pfn_a = proc_a.mm.page_table.walk(box["ra"].vpn_start).pfn
        pfn_b = proc_b.mm.page_table.walk(box["rb"].vpn_start).pfn
        assert pfn_a == pfn_b
        assert kernel.frames.refcount(pfn_a) == 2
        assert kernel.stats.counter("ksm.pages_merged").value == 1
        # Both sides are now CoW: a write diverges privately.
        pte_a = proc_a.mm.page_table.walk(box["ra"].vpn_start)
        pte_b = proc_b.mm.page_table.walk(box["rb"].vpn_start)
        assert pte_a.cow and pte_b.cow
        assert check_all(kernel) == []
